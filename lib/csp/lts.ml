type t = {
  initial : int;
  states : Proc.t array;
  transitions : (Event.label * int) list array;
}

exception State_limit of int

type progress = {
  explored : int;
  frontier : int;
  reason : [ `States | `Deadline ];
}

type compile_result =
  | Complete of t
  | Partial of t * progress

module Proc_tbl = Hashtbl.Make (struct
  type t = Proc.t
  let equal = Proc.equal
  let hash = Proc.hash
end)

let compile_budgeted ?(max_states = 1_000_000) ?stop_at ?(obs = Obs.silent)
    defs root =
  Obs.span obs "lts.compile" (fun () ->
  let c_states = Obs.counter obs "lts.states" in
  let c_transitions = Obs.counter obs "lts.transitions" in
  let step = Semantics.make_cached ~obs defs in
  let index = Proc_tbl.create 1024 in
  let states = ref [] in  (* reverse order *)
  let count = ref 0 in
  let queue = Queue.create () in
  let capped = ref false in
  let intern term =
    match Proc_tbl.find_opt index term with
    | Some i -> Some i
    | None ->
      if !count >= max_states then begin
        capped := true;
        None
      end
      else begin
        let i = !count in
        incr count;
        Obs.incr c_states;
        Proc_tbl.replace index term i;
        states := term :: !states;
        Queue.add (i, term) queue;
        Some i
      end
  in
  let fenv = Defs.fenv defs in
  let tys = Defs.ty_lookup defs in
  let root = Proc.const_fold ~tys fenv root in
  let initial = Option.value (intern root) ~default:0 in
  let explored = ref 0 in
  let timed_out = ref false in
  (* Only give up after at least one state has been explored, so callers
     always receive non-trivial progress information even with a deadline
     that has effectively already passed. *)
  let over_deadline () =
    match stop_at with
    | Some limit -> !explored > 0 && Obs.now () > limit
    | None -> false
  in
  let transitions = ref [] in  (* reverse order, aligned with states *)
  let rec drain () =
    (* an empty queue means compilation is complete — the deadline only
       matters while work remains, otherwise a budget expiring on the
       final iteration would misreport a finished graph as partial *)
    if Queue.is_empty queue then ()
    else if over_deadline () then timed_out := true
    else
      match Queue.take_opt queue with
      | None -> ()
      | Some (_, term) ->
        (* States are dequeued in id order (FIFO), so consing transition
           lists keeps them aligned with the (reversed) state list. *)
        let ts = step term in
        let ts =
          List.filter_map
            (fun (l, target) ->
              match intern target with
              | Some i -> Some (l, i)
              | None -> None)
            ts
        in
        transitions := ts :: !transitions;
        Obs.add c_transitions (List.length ts);
        incr explored;
        drain ()
  in
  drain ();
  (* Unexplored frontier states get empty transition rows to keep the
     arrays aligned; a partial graph is only meaningful for statistics and
     resumption, not for verdicts. *)
  let frontier = Queue.length queue in
  for _ = 1 to frontier do
    transitions := [] :: !transitions
  done;
  let t =
    {
      initial;
      states = Array.of_list (List.rev !states);
      transitions = Array.of_list (List.rev !transitions);
    }
  in
  if !timed_out then
    Partial (t, { explored = !explored; frontier; reason = `Deadline })
  else if !capped then
    Partial (t, { explored = !explored; frontier; reason = `States })
  else Complete t)

let compile ?(max_states = 1_000_000) defs root =
  match compile_budgeted ~max_states defs root with
  | Complete t -> t
  | Partial _ -> raise (State_limit max_states)

let num_states t = Array.length t.states

let num_transitions t =
  Array.fold_left (fun acc ts -> acc + List.length ts) 0 t.transitions

let transitions_of t i = t.transitions.(i)
let state_term t i = t.states.(i)

let initials t i =
  List.sort_uniq Event.compare_label (List.map fst t.transitions.(i))

(* Both lean on the sorted-row invariant: [Event.compare_label] orders
   Tau before every other label, so the taus are exactly the row's
   prefix. Stopping there matters — these run per closure/stability query
   on rows that can hold thousands of visible transitions. *)
let is_stable t i =
  match t.transitions.(i) with
  | (Event.Tau, _) :: _ -> false
  | _ -> true

let tau_successors t i =
  let rec go acc = function
    | (Event.Tau, j) :: rest -> go (j :: acc) rest
    | _ -> acc
  in
  go [] t.transitions.(i)

module Int_set = Set.Make (Int)

let tau_closure t seeds =
  let rec go visited = function
    | [] -> visited
    | i :: rest ->
      if Int_set.mem i visited then go visited rest
      else go (Int_set.add i visited) (tau_successors t i @ rest)
  in
  Int_set.elements (go Int_set.empty seeds)

let deadlocks t =
  let result = ref [] in
  Array.iteri
    (fun i ts ->
      if ts = [] && not (Proc.equal t.states.(i) Proc.omega) then
        result := i :: !result)
    t.transitions;
  List.rev !result

let path_to t pred =
  let n = num_states t in
  let parent = Array.make n None in  (* (label, predecessor) *)
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(t.initial) <- true;
  Queue.add t.initial queue;
  let rec reconstruct acc i =
    match parent.(i) with
    | None -> acc
    | Some (l, p) -> reconstruct (l :: acc) p
  in
  let rec search () =
    match Queue.take_opt queue with
    | None -> None
    | Some i ->
      if pred i then Some (reconstruct [] i, i)
      else begin
        List.iter
          (fun (l, j) ->
            if not visited.(j) then begin
              visited.(j) <- true;
              parent.(j) <- Some (l, i);
              Queue.add j queue
            end)
          t.transitions.(i);
        search ()
      end
  in
  search ()

let trace_path_to t pred =
  match path_to t pred with
  | None -> None
  | Some (labels, i) ->
    let trace =
      List.filter_map
        (fun l -> match l with Event.Vis e -> Some e | _ -> None)
        labels
    in
    Some (trace, i)

(* Tarjan's SCC over tau-edges only; a state diverges iff it belongs to a
   tau-SCC of size >= 2 or has a tau self-loop. *)
let divergences t =
  let n = num_states t in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let divergent = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (tau_successors t v);
    if lowlink.(v) = index.(v) then begin
      (* pop the SCC rooted at v *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      let scc = pop [] in
      let self_loop w = List.exists (fun x -> x = w) (tau_successors t w) in
      match scc with
      | [ w ] -> if self_loop w then divergent := w :: !divergent
      | _ :: _ :: _ -> divergent := scc @ !divergent
      | [] -> ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.sort_uniq Int.compare !divergent

let to_dot ?(max_label = 40) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph lts {\n  rankdir=LR;\n";
  Array.iteri
    (fun i term ->
      let label = Proc.to_string term in
      let label =
        if String.length label > max_label then
          String.sub label 0 (max_label - 3) ^ "..."
        else label
      in
      let escaped = String.concat "\\\"" (String.split_on_char '\"' label) in
      Buffer.add_string buf
        (Printf.sprintf
           "  s%d [label=\"%d\", tooltip=\"%s\"%s];\n" i i escaped
           (if i = t.initial then ", peripheries=2" else "")))
    t.states;
  Array.iteri
    (fun i ts ->
      List.iter
        (fun (l, j) ->
          match l with
          | Event.Tau ->
            Buffer.add_string buf
              (Printf.sprintf "  s%d -> s%d [label=\"tau\", style=dashed];\n" i j)
          | _ ->
            Buffer.add_string buf
              (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" i j
                 (Event.label_to_string l)))
        ts)
    t.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_stats ppf t =
  Format.fprintf ppf "%d states, %d transitions" (num_states t)
    (num_transitions t)
