module String_map = Map.Make (String)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Lit of Value.t
  | Var of string
  | Neg of t
  | Not of t
  | Bin of binop * t * t
  | Tuple of t list
  | Ctor of string * t list
  | Set of t list
  | Range of t * t
  | Ty_dom of Ty.t
  | Mem of t * t
  | If of t * t * t
  | App of string * t list

exception Eval_error of string

type env = Value.t String_map.t

type fenv = string -> (string list * t) option

let no_funcs _ = None

let empty_env = String_map.empty
let bind = String_map.add
let bind_all bindings env =
  List.fold_left (fun env (x, v) -> String_map.add x v env) env bindings

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let no_tys : Ty.lookup = fun _ -> None

(* Recursion guard for user-defined functions. *)
let max_app_depth = 10_000

let arith op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then err "division by zero" else a / b
  | Mod -> if b = 0 then err "modulo by zero" else ((a mod b) + b) mod b
  | Eq | Neq | Lt | Le | Gt | Ge | And | Or ->
    invalid_arg "Expr.arith: non-arithmetic operator"

let eval ?(tys = no_tys) fenv env expr =
  let rec scalar depth env expr =
    match expr with
    | Lit v -> v
    | Var x ->
      (match String_map.find_opt x env with
       | Some v -> v
       | None -> err "unbound variable %s" x)
    | Neg e -> Value.Int (-Value.as_int (scalar depth env e))
    | Not e -> Value.Bool (not (Value.as_bool (scalar depth env e)))
    | Bin ((Add | Sub | Mul | Div | Mod) as op, e1, e2) ->
      let a = Value.as_int (scalar depth env e1) in
      let b = Value.as_int (scalar depth env e2) in
      Value.Int (arith op a b)
    | Bin (Eq, e1, e2) ->
      Value.Bool (Value.equal (scalar depth env e1) (scalar depth env e2))
    | Bin (Neq, e1, e2) ->
      Value.Bool (not (Value.equal (scalar depth env e1) (scalar depth env e2)))
    | Bin ((Lt | Le | Gt | Ge) as op, e1, e2) ->
      let r = Value.compare (scalar depth env e1) (scalar depth env e2) in
      Value.Bool
        (match op with
         | Lt -> r < 0
         | Le -> r <= 0
         | Gt -> r > 0
         | Ge -> r >= 0
         | Add | Sub | Mul | Div | Mod | Eq | Neq | And | Or ->
           invalid_arg "Expr.eval: non-ordering operator")
    | Bin (And, e1, e2) ->
      Value.Bool
        (Value.as_bool (scalar depth env e1)
         && Value.as_bool (scalar depth env e2))
    | Bin (Or, e1, e2) ->
      Value.Bool
        (Value.as_bool (scalar depth env e1)
         || Value.as_bool (scalar depth env e2))
    | Tuple es -> Value.Tuple (List.map (scalar depth env) es)
    | Ctor (c, es) -> Value.Ctor (c, List.map (scalar depth env) es)
    | Set _ | Range _ | Ty_dom _ ->
      err "set expression used in scalar position"
    | Mem (e, s) ->
      let v = scalar depth env e in
      Value.Bool (List.exists (Value.equal v) (set depth env s))
    | If (c, e1, e2) ->
      if Value.as_bool (scalar depth env c) then scalar depth env e1
      else scalar depth env e2
    | App (f, args) ->
      if depth > max_app_depth then err "function %s: recursion too deep" f;
      (match fenv f with
       | None -> err "unknown function %s" f
       | Some (params, body) ->
         if List.length params <> List.length args then
           err "function %s: arity mismatch" f;
         let values = List.map (scalar depth env) args in
         let env' = bind_all (List.combine params values) empty_env in
         scalar (depth + 1) env' body)
  and set depth env expr =
    match expr with
    | Set es -> List.sort_uniq Value.compare (List.map (scalar depth env) es)
    | Range (lo, hi) ->
      let lo = Value.as_int (scalar depth env lo) in
      let hi = Value.as_int (scalar depth env hi) in
      if lo > hi then [] else List.init (hi - lo + 1) (fun i -> Value.Int (lo + i))
    | Ty_dom ty -> Ty.domain tys ty
    | If (c, e1, e2) ->
      if Value.as_bool (scalar depth env c) then set depth env e1
      else set depth env e2
    | Lit _ | Var _ | Neg _ | Not _ | Bin _ | Tuple _ | Ctor _ | Mem _ | App _
      -> err "scalar expression used in set position"
  in
  scalar 0 env expr

let eval_set ?(tys = no_tys) fenv env expr =
  let rec set env expr =
    match expr with
    | Set es ->
      List.sort_uniq Value.compare (List.map (eval ~tys fenv env) es)
    | Range (lo, hi) ->
      let lo = Value.as_int (eval ~tys fenv env lo) in
      let hi = Value.as_int (eval ~tys fenv env hi) in
      if lo > hi then [] else List.init (hi - lo + 1) (fun i -> Value.Int (lo + i))
    | Ty_dom ty -> Ty.domain tys ty
    | If (c, e1, e2) ->
      if Value.as_bool (eval ~tys fenv env c) then set env e1 else set env e2
    | Lit _ | Var _ | Neg _ | Not _ | Bin _ | Tuple _ | Ctor _ | Mem _ | App _
      -> err "scalar expression used in set position"
  in
  set env expr

let eval_bool ?tys fenv env expr = Value.as_bool (eval ?tys fenv env expr)

let free_vars expr =
  let rec go acc = function
    | Lit _ | Ty_dom _ -> acc
    | Var x -> x :: acc
    | Neg e | Not e -> go acc e
    | Bin (_, e1, e2) | Range (e1, e2) | Mem (e1, e2) -> go (go acc e1) e2
    | Tuple es | Ctor (_, es) | Set es | App (_, es) -> List.fold_left go acc es
    | If (c, e1, e2) -> go (go (go acc c) e1) e2
  in
  List.sort_uniq String.compare (go [] expr)

let rec subst resolve expr =
  match expr with
  | Lit _ | Ty_dom _ -> expr
  | Var x ->
    (match resolve x with
     | Some v -> Lit v
     | None -> expr)
  | Neg e -> Neg (subst resolve e)
  | Not e -> Not (subst resolve e)
  | Bin (op, e1, e2) -> Bin (op, subst resolve e1, subst resolve e2)
  | Tuple es -> Tuple (List.map (subst resolve) es)
  | Ctor (c, es) -> Ctor (c, List.map (subst resolve) es)
  | Set es -> Set (List.map (subst resolve) es)
  | Range (e1, e2) -> Range (subst resolve e1, subst resolve e2)
  | Mem (e1, e2) -> Mem (subst resolve e1, subst resolve e2)
  | If (c, e1, e2) -> If (subst resolve c, subst resolve e1, subst resolve e2)
  | App (f, es) -> App (f, List.map (subst resolve) es)

(* Structural equality, written out rather than [Stdlib.compare = 0]:
   equality runs on every hash-consing probe of [Call]/[Guard]/[If]
   process nodes, and the polymorphic compare's C-level value walk on
   literal-heavy expressions dominates whole-model compilation. Constant
   constructors ([binop]) are immediates, so [==] decides them exactly;
   [Ty_dom] payloads are rare and fall back to the polymorphic walk. *)
let rec equal e1 e2 =
  e1 == e2
  ||
  match e1, e2 with
  | Lit v1, Lit v2 -> Value.equal v1 v2
  | Var x1, Var x2 -> String.equal x1 x2
  | Neg a1, Neg a2 | Not a1, Not a2 -> equal a1 a2
  | Bin (op1, a1, b1), Bin (op2, a2, b2) ->
    op1 == op2 && equal a1 a2 && equal b1 b2
  | Tuple es1, Tuple es2 | Set es1, Set es2 -> equal_list es1 es2
  | Ctor (c1, es1), Ctor (c2, es2) | App (c1, es1), App (c2, es2) ->
    String.equal c1 c2 && equal_list es1 es2
  | Range (a1, b1), Range (a2, b2) | Mem (a1, b1), Mem (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | Ty_dom t1, Ty_dom t2 -> Stdlib.compare t1 t2 = 0
  | If (c1, a1, b1), If (c2, a2, b2) ->
    equal c1 c2 && equal a1 a2 && equal b1 b2
  | ( ( Lit _ | Var _ | Neg _ | Not _ | Bin _ | Tuple _ | Ctor _ | Set _
      | Range _ | Ty_dom _ | Mem _ | If _ | App _ ),
      _ ) ->
    false

and equal_list l1 l2 =
  match l1, l2 with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && equal_list xs ys
  | _ -> false

let compare = Stdlib.compare

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"

let rec pp ppf = function
  | Lit v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x
  | Neg e -> Format.fprintf ppf "-(%a)" pp e
  | Not e -> Format.fprintf ppf "not (%a)" pp e
  | Bin (op, e1, e2) ->
    Format.fprintf ppf "(%a %s %a)" pp e1 (binop_name op) pp e2
  | Tuple es -> Format.fprintf ppf "(%a)" pp_list es
  | Ctor (c, []) -> Format.pp_print_string ppf c
  | Ctor (c, es) ->
    Format.pp_print_string ppf c;
    List.iter (fun e -> Format.fprintf ppf ".%a" pp_arg e) es
  | Set es -> Format.fprintf ppf "{%a}" pp_list es
  | Range (lo, hi) -> Format.fprintf ppf "{%a..%a}" pp lo pp hi
  | Ty_dom ty -> Ty.pp ppf ty
  | Mem (e, s) -> Format.fprintf ppf "member(%a, %a)" pp e pp s
  | If (c, e1, e2) ->
    Format.fprintf ppf "(if %a then %a else %a)" pp c pp e1 pp e2
  | App (f, es) -> Format.fprintf ppf "%s(%a)" f pp_list es

and pp_arg ppf e =
  match e with
  | Lit _ | Var _ | Ctor (_, []) -> pp ppf e
  | _ -> Format.fprintf ppf "(%a)" pp e

and pp_list ppf es =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp ppf es

let to_string e = Format.asprintf "%a" pp e

let int n = Lit (Value.Int n)
let bool b = Lit (Value.Bool b)
let sym s = Lit (Value.sym s)
let var x = Var x
let ( + ) e1 e2 = Bin (Add, e1, e2)
let ( - ) e1 e2 = Bin (Sub, e1, e2)
let ( = ) e1 e2 = Bin (Eq, e1, e2)
let ( < ) e1 e2 = Bin (Lt, e1, e2)
let ( && ) e1 e2 = Bin (And, e1, e2)
