type t = {
  chan : string;
  args : Value.t list;
}

type label =
  | Tau
  | Tick
  | Vis of t

let event chan args = { chan; args }

let equal e1 e2 =
  String.equal e1.chan e2.chan && Value.equal_list e1.args e2.args

let compare e1 e2 =
  let r = String.compare e1.chan e2.chan in
  if r <> 0 then r else Value.compare_list e1.args e2.args

let hash e =
  List.fold_left (fun acc v -> (acc * 65599) + Value.hash v)
    (Hashtbl.hash e.chan) e.args

let pp ppf e =
  Format.pp_print_string ppf e.chan;
  List.iter (fun v -> Format.fprintf ppf ".%a" Value.pp_atom v) e.args

let to_string e = Format.asprintf "%a" pp e

let equal_label l1 l2 =
  match l1, l2 with
  | Tau, Tau -> true
  | Tick, Tick -> true
  | Vis e1, Vis e2 -> equal e1 e2
  | (Tau | Tick | Vis _), _ -> false

let compare_label l1 l2 =
  match l1, l2 with
  | Tau, Tau -> 0
  | Tau, _ -> -1
  | _, Tau -> 1
  | Tick, Tick -> 0
  | Tick, _ -> -1
  | _, Tick -> 1
  | Vis e1, Vis e2 -> compare e1 e2

let pp_label ppf = function
  | Tau -> Format.pp_print_string ppf "tau"
  | Tick -> Format.pp_print_string ppf "tick"
  | Vis e -> pp ppf e

let label_to_string l = Format.asprintf "%a" pp_label l

let is_visible = function
  | Vis _ -> true
  | Tau | Tick -> false
