(** The one configuration record every check accepts.

    Replaces the [?interner ?max_states ?max_pairs ?deadline ?workers]
    optional-argument sprawl that used to be copy-pasted across
    {!Refine}, [Cspm.Check], [Security.Ns_protocol], and
    [Ota.Requirements]: build a [t] once with the [with_*] builders and
    pass it as [?config] everywhere.

    {[
      let config =
        Check_config.(default |> with_deadline 30. |> with_workers 4)
      in
      Refine.traces_refines ~config defs ~spec ~impl
    ]}

    [Refine.check] additionally keeps [?model], [?max_states], and
    [?deadline] as thin conveniences (they override the record's
    fields). *)

type t = {
  interner : Search.interner;
      (** how on-the-fly implementation states are interned; [`Id]
          (hash-consing) unless you are the structural test oracle *)
  max_states : int;  (** budget for each [Lts] compilation *)
  max_pairs : int option;
      (** budget for the product exploration; [None] = [max_states] *)
  deadline : float option;
      (** wall-clock budget in seconds from the start of the check;
          [None] = unbounded *)
  workers : int;  (** domain-pool size for the product search; 1 = sequential *)
  obs : Obs.t;
      (** observability handle: spans and metrics from every pipeline
          stage go here ({!Obs.silent} costs one branch per operation) *)
  progress : (Search.progress -> unit) option;
      (** live progress callback, throttled to the engine's deadline-poll
          cadence (once per 256 dequeues) *)
  cancel : (unit -> bool) option;
      (** cancellation token, polled at the same cadence: once it returns
          [true] the product search stops with [Inconclusive]
          ([Interrupt]) and a checkpoint in the hint — the hook the CLIs
          use to turn SIGINT/SIGTERM into a flushed checkpoint *)
  memory_limit_mb : int option;
      (** heap watermark in MiB, polled at the same cadence: crossing it
          stops the product search with [Inconclusive] ([Memory]) while
          the process can still write its report *)
  reductions : Reduce.pipeline;
      (** the staged reduction pipeline ({!Reduce.default_pipeline} by
          default); [Reduce.effective] filters it per model, so
          inapplicable passes are skipped rather than misapplied. Use
          [with_reductions []] for the raw engine. Counterexamples are
          re-derived by the raw engine either way, so verdicts and traces
          never depend on this field — only speed does. *)
  cache : Cache.t option;
      (** content-addressed store of compiled/normalised/reduced LTSs
          ({!Cache}); when set, per-assertion spec/impl compilation is
          keyed by content digest and reused across assertions, runs,
          and (in the daemon) jobs. Only complete compilation results
          are cached, so verdicts never depend on this field either. *)
}

val default : t
(** [`Id] interner, [max_states = 1_000_000], no pair budget of its own,
    no deadline, one worker, {!Obs.silent}, no progress callback — the
    exact behavior of the old per-function defaults. *)

val with_interner : Search.interner -> t -> t
val with_max_states : int -> t -> t
val with_max_pairs : int -> t -> t
val with_deadline : float -> t -> t
val with_workers : int -> t -> t
val with_obs : Obs.t -> t -> t
val with_progress : (Search.progress -> unit) -> t -> t
val with_cancel : (unit -> bool) -> t -> t
val with_memory_limit : int -> t -> t
val with_reductions : Reduce.pipeline -> t -> t
val with_cache : Cache.t -> t -> t
(** Builders, argument-last so they chain:
    [Check_config.(default |> with_deadline 0.5 |> with_workers 2)]. *)
