(** Finite data types for channel fields and datatype constructor arguments.

    FDR-style refinement checking requires every channel field to range over
    a finite, enumerable domain; input prefixes ([c?x]) are expanded over
    that domain when transitions are computed. *)

type t =
  | Int_range of int * int  (** inclusive range, e.g. [{0..7}] *)
  | Bool
  | Named of string  (** reference to a declared datatype or nametype *)
  | Tuple of t list

(** What a type name stands for: either a CSPm [nametype] alias or a
    [datatype] with constructors. *)
type def =
  | Alias of t
  | Variants of (string * t list) list

type lookup = string -> def option
(** Resolver for named types, or [None] if the name is unknown. *)

exception Domain_too_large of string
exception Unknown_type of string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val domain : ?limit:int -> lookup -> t -> Value.t list
(** [domain lookup ty] enumerates every value of [ty] in increasing order.

    @param limit cap on domain size (default [100_000]).
    @raise Domain_too_large if the enumeration exceeds [limit].
    @raise Unknown_type on a dangling [Named] reference or a recursive
      datatype (whose domain would be infinite). *)

val domain_size : lookup -> t -> int
(** Size of [domain lookup ty] without materializing it (same exceptions). *)

val contains : lookup -> t -> Value.t -> bool
(** [contains lookup ty v] tests domain membership structurally, without
    enumerating the domain. *)
