(* All four checks are thin configurations of the shared product-search
   engine in Search: they pick a state source (terms interned on the fly,
   or a precompiled graph) and a refusal/divergence mode, and the engine
   owns interning, parents, budgets, and trace reconstruction. *)

type violation = Search.violation =
  | Trace_violation of Event.label
  | Refusal_violation of {
      offered : Event.label list;
      acceptances : Event.label list list;
    }
  | Deadlock
  | Divergence

type counterexample = Search.counterexample = {
  trace : Event.label list;
  violation : violation;
  impl_state : Proc.t;
}

type stats = Search.stats = {
  impl_states : int;
  spec_nodes : int;
  pairs : int;
  wall_s : float;
  states_per_sec : float;
  peak_frontier : int;
  workers : int;
  par_speedup : float;
  reductions : (string * int * int) list;
}

type budget_kind = Search.budget_kind =
  | Deadline
  | States
  | Pairs
  | Interrupt
  | Memory

type resume_hint = Search.resume_hint = {
  frontier : int;
  deepest : Event.label list;
  exhausted : budget_kind;
  checkpoint : Search.checkpoint option;
}

type result = Search.result =
  | Holds of stats
  | Fails of counterexample
  | Inconclusive of stats * resume_hint

type model =
  | Traces
  | Failures
  | Failures_divergences

let visible_trace = Search.visible_trace

(* Partial specification compilation cannot support a verdict: report it
   as inconclusive, attributing the exhausted budget. *)
let spec_inconclusive progress =
  let exhausted =
    match progress.Lts.reason with `States -> States | `Deadline -> Deadline
  in
  Inconclusive
    ( Search.make_stats ~impl_states:0 ~spec_nodes:progress.Lts.explored
        ~pairs:0 (),
      {
        frontier = progress.Lts.frontier;
        deepest = [];
        exhausted;
        checkpoint = None;
      } )

(* The model a refusal mode decides under, for gating reduction passes.
   [`Full] (the determinism check) compares acceptance sets of the same
   process against itself — no reduction pass is proven
   verdict-preserving for it, so it always takes the raw path. *)
let model_of_refusal = function
  | `None -> Some `Traces
  | `Acceptances -> Some `Failures
  | `Full -> None

let pass_stat_triples =
  List.map (fun s -> s.Reduce.pass, s.Reduce.states_before, s.Reduce.states_after)

(* Cache-fronted compilation. A hit returns the finished artifact without
   opening any compile/normalise span — the warm path does no graph work
   at all. Only [Complete] results are ever stored: a [Partial] graph
   reflects the budgets of the run that produced it, not the content its
   key names. *)

(* Compile a term to an explicit graph via [Lts.compile_budgeted]. *)
let cached_graph ~(config : Check_config.t) ?stop_at defs proc =
  let compile () =
    Lts.compile_budgeted ~max_states:config.max_states ?stop_at
      ~obs:config.obs defs proc
  in
  match config.cache with
  | None -> compile ()
  | Some cache ->
    let key = Cache.lts_key ~max_states:config.max_states defs proc in
    (match Cache.find cache key with
     | Some (Cache.Lts_graph g) -> Lts.Complete g
     | Some _ | None ->
       let r = compile () in
       (match r with
        | Lts.Complete g -> Cache.add cache key (Cache.Lts_graph g)
        | Lts.Partial _ -> ());
       r)

(* Compile and normalise a specification. Returns the normal form plus the
   key it is cached under (feeding the reduced-graph key), or the partial
   progress if the spec ran out of budget. *)
let cached_spec ~(config : Check_config.t) ?stop_at defs spec =
  let obs = config.obs in
  let compile () =
    match
      Lts.compile_budgeted ~max_states:config.max_states ?stop_at ~obs defs
        spec
    with
    | Lts.Partial (_, progress) -> Error progress
    | Lts.Complete lts -> Ok (lts, Normalise.normalise ~obs lts)
  in
  match config.cache with
  | None -> Result.map (fun (_, norm) -> norm, None) (compile ())
  | Some cache ->
    let key = Cache.spec_key ~max_states:config.max_states defs spec in
    (match Cache.find cache key with
     | Some (Cache.Norm_spec (_, norm)) -> Ok (norm, Some key)
     | Some _ | None ->
       Result.map
         (fun (lts, norm) ->
           Cache.add cache key (Cache.Norm_spec (lts, norm));
           norm, Some key)
         (compile ()))

let with_reduction_stats reductions = function
  | Holds stats -> Holds { stats with reductions }
  | Inconclusive (stats, hint) -> Inconclusive ({ stats with reductions }, hint)
  | Fails _ as r -> r

let product_check ~(config : Check_config.t) ~refusal_mode ~max_pairs ?stop_at
    ?resume_from defs ~spec ~impl =
  let obs = config.obs in
  match cached_spec ~config ?stop_at defs spec with
  | Error progress -> spec_inconclusive progress
  | Ok (norm, spec_cache_key) ->
    (* The unreduced engine: implementation states generated on the fly.
       Used when no pass applies, when the staged compile degrades, and to
       re-derive counterexamples found on a reduced graph. *)
    let raw_search ?resume_from () =
      let fenv = Defs.fenv defs in
      let tys = Defs.ty_lookup defs in
      let impl0 = Proc.const_fold ~tys fenv impl in
      let source =
        Search.proc_source ~interner:config.interner
          ~make_step:(fun () -> Semantics.make_cached ~obs defs)
          impl0
      in
      Search.product ~refusal:refusal_mode ~max_pairs ?stop_at
        ~workers:config.workers ~obs ?progress:config.progress
        ?cancel:config.cancel ?memory_limit_mb:config.memory_limit_mb
        ?resume_from ?resume_deadline:config.deadline ~norm source
    in
    let pipeline =
      match model_of_refusal refusal_mode with
      | None -> []
      | Some model -> Reduce.effective ~model config.reductions
    in
    (* A checkpoint names the engine that recorded it. One recorded by
       the raw engine — including the raw fallback of a reduced run whose
       staged compile ran out of deadline — resumes on the raw path
       regardless of [config.reductions]; one recorded by a reduced
       search must be resumed by the same pipeline, and [Search.product]
       raises [Resume_mismatch] below if it is not. *)
    let pipeline =
      match resume_from with
      | Some cp when String.equal cp.Search.pipeline "none" -> []
      | Some _ | None -> pipeline
    in
    (match pipeline, model_of_refusal refusal_mode with
     | [], _ | _, None -> raw_search ?resume_from ()
     | pipeline, Some model ->
       let fp = Reduce.fingerprint pipeline in
       (* Key the staged and reduced artifacts when a cache is configured.
          The reduced key includes the spec key: the dead pass eliminates
          events against the spec's normal-form alphabet, so the same
          implementation reduced against a different spec is a different
          artifact. *)
       let cache_keys =
         match config.cache, spec_cache_key with
         | Some cache, Some spec_key ->
           let impl_key =
             Cache.impl_key ~max_states:config.max_states defs impl
           in
           let reduced_key =
             Cache.reduced_key ~model ~pipeline ~spec:spec_key
               ~impl:impl_key
           in
           Some (cache, impl_key, reduced_key)
         | _ -> None
       in
       let reduced_hit =
         match cache_keys with
         | Some (cache, _, reduced_key) ->
           (match Cache.find cache reduced_key with
            | Some (Cache.Reduced (g, stats)) -> Some (g, stats)
            | Some _ | None -> None)
         | None -> None
       in
       let reduction =
         match reduced_hit with
         | Some _ -> reduced_hit
         | None ->
           let staged () =
             match resume_from with
             | Some _ ->
               (* A checkpoint recorded against this pipeline implies the
                  staged compile completed; rebuild it deterministically,
                  with no deadline or cancellation mid-compile. *)
               Reduce.compile_staged ~max_states:config.max_states ~obs
                 defs impl
             | None ->
               Reduce.compile_staged ~max_states:config.max_states ?stop_at
                 ?cancel:config.cancel ~obs defs impl
           in
           let compiled =
             match cache_keys with
             | Some (cache, impl_key, _) ->
               (match Cache.find cache impl_key with
                | Some (Cache.Lts_graph g) -> Lts.Complete g
                | Some _ | None ->
                  let r = staged () in
                  (match r with
                   | Lts.Complete g ->
                     Cache.add cache impl_key (Cache.Lts_graph g)
                   | Lts.Partial _ -> ());
                  r)
             | None -> staged ()
           in
           (match compiled with
            | Lts.Partial _ -> None
            | Lts.Complete impl_lts ->
              let reduced, pass_stats =
                Reduce.apply ~obs ~model ~norm pipeline impl_lts
              in
              (match cache_keys with
               | Some (cache, _, reduced_key) ->
                 Cache.add cache reduced_key
                   (Cache.Reduced (reduced, pass_stats))
               | None -> ());
              Some (reduced, pass_stats))
       in
       (match reduction with
        | None ->
          (* Budget ran out mid-decomposition: fall back to the raw
             engine, which degrades gracefully (and can still find an
             early counterexample without the full graph). *)
          raw_search ?resume_from ()
        | Some (reduced, pass_stats) ->
          let por =
            match refusal_mode with
            | `None when List.memq Reduce.Por pipeline ->
              Some (Reduce.por_hooks ~norm reduced)
            | _ -> None
          in
          let source = Search.lts_source ~check_divergence:false reduced in
          let result =
            Search.product ~refusal:refusal_mode ~max_pairs ?stop_at
              ~workers:config.workers ~obs ?progress:config.progress
              ?cancel:config.cancel ?memory_limit_mb:config.memory_limit_mb
              ?resume_from ?resume_deadline:config.deadline ?por
              ~pipeline:fp ~norm source
          in
          (match result with
           | Fails _ ->
             (* Counterexample canonicalisation: the reduced graph proves
                a violation exists, but its trace and state term reflect
                the reduced shape. Re-derive with the raw engine so the
                reported counterexample is byte-identical to
                [--reductions none]; if the raw run cannot reach a
                verdict within the budgets, keep the reduced one. *)
             (match raw_search () with
              | Fails _ as raw -> raw
              | Holds _ | Inconclusive _ -> result)
           | Holds _ | Inconclusive _ ->
             with_reduction_stats (pass_stat_triples pass_stats) result)))

(* Failures-divergences refinement: both sides are compiled to explicit
   graphs (divergence detection needs the tau-SCCs of the implementation),
   then the product is explored. *)
let fd_check ~(config : Check_config.t) ~max_pairs ?stop_at ?resume_from defs
    ~spec ~impl =
  let obs = config.obs in
  match cached_spec ~config ?stop_at defs spec with
  | Error progress -> spec_inconclusive progress
  | Ok (norm, spec_cache_key) ->
    (match cached_graph ~config ?stop_at defs impl with
     | Lts.Partial (_, progress) ->
       (* Divergence detection needs the full tau graph of the
          implementation; a partial compile cannot support a verdict. *)
       let exhausted =
         match progress.Lts.reason with
         | `States -> States
         | `Deadline -> Deadline
       in
       Inconclusive
         ( Search.make_stats ~impl_states:progress.Lts.explored
             ~spec_nodes:(Normalise.num_nodes norm) ~pairs:0 (),
           {
             frontier = progress.Lts.frontier;
             deepest = [];
             exhausted;
             checkpoint = None;
           } )
     | Lts.Complete impl_lts ->
       let search ~pipeline lts =
         let source = Search.lts_source ~check_divergence:true lts in
         Search.product ~refusal:`Acceptances ~max_pairs ?stop_at
           ~workers:config.workers ~obs ?progress:config.progress
           ?cancel:config.cancel ?memory_limit_mb:config.memory_limit_mb
           ?resume_from ?resume_deadline:config.deadline ~pipeline ~norm
           source
       in
       let effective =
         match resume_from with
         | Some cp when String.equal cp.Search.pipeline "none" -> []
         | Some _ | None -> Reduce.effective ~model:`Fd config.reductions
       in
       (match effective with
        | [] -> search ~pipeline:"none" impl_lts
        | pipeline ->
          (* FD reduced graphs are keyed like the staged path's, except
             the implementation component comes from [cached_graph]'s
             namespace ([lts_key]) — state terms differ between the raw
             and staged compilers, so the namespaces must not mix. *)
          let reduced_cache_key =
            match config.cache, spec_cache_key with
            | Some _, Some spec_key ->
              Some
                (Cache.reduced_key ~model:`Fd ~pipeline ~spec:spec_key
                   ~impl:
                     (Cache.lts_key ~max_states:config.max_states defs impl))
            | _ -> None
          in
          let reduced, pass_stats =
            match
              match config.cache, reduced_cache_key with
              | Some cache, Some key -> Cache.find cache key
              | _ -> None
            with
            | Some (Cache.Reduced (g, stats)) -> g, stats
            | Some _ | None ->
              let reduced, pass_stats =
                Reduce.apply ~obs ~model:`Fd ~norm pipeline impl_lts
              in
              (match config.cache, reduced_cache_key with
               | Some cache, Some key ->
                 Cache.add cache key (Cache.Reduced (reduced, pass_stats))
               | _ -> ());
              reduced, pass_stats
          in
          (match search ~pipeline:(Reduce.fingerprint pipeline) reduced with
           | Fails _ as result ->
             (* Canonicalise the counterexample on the unreduced graph
                (see [product_check]); the raw search ignores the
                checkpoint of the reduced one. *)
             let raw =
               let source =
                 Search.lts_source ~check_divergence:true impl_lts
               in
               Search.product ~refusal:`Acceptances ~max_pairs ?stop_at
                 ~workers:config.workers ~obs ?progress:config.progress
                 ?cancel:config.cancel
                 ?memory_limit_mb:config.memory_limit_mb
                 ?resume_deadline:config.deadline ~norm source
             in
             (match raw with
              | Fails _ -> raw
              | Holds _ | Inconclusive _ -> result)
           | result ->
             with_reduction_stats (pass_stat_triples pass_stats) result)))

let stop_at_of_deadline = function
  | None -> None
  | Some seconds -> Some (Obs.now () +. seconds)

let check ?(config = Check_config.default) ?model ?max_states ?deadline defs
    ~spec ~impl =
  (* the convenience arguments override the record's fields *)
  let config =
    match max_states with
    | Some n -> Check_config.with_max_states n config
    | None -> config
  in
  let config =
    match deadline with
    | Some d -> Check_config.with_deadline d config
    | None -> config
  in
  let model = Option.value model ~default:Traces in
  let max_pairs = Option.value config.max_pairs ~default:config.max_states in
  let stop_at = stop_at_of_deadline config.deadline in
  match model with
  | Traces ->
    product_check ~config ~refusal_mode:`None ~max_pairs ?stop_at defs ~spec
      ~impl
  | Failures ->
    product_check ~config ~refusal_mode:`Acceptances ~max_pairs ?stop_at defs
      ~spec ~impl
  | Failures_divergences ->
    fd_check ~config ~max_pairs ?stop_at defs ~spec ~impl

let traces_refines ?config defs ~spec ~impl =
  check ?config ~model:Traces defs ~spec ~impl

let failures_refines ?config defs ~spec ~impl =
  check ?config ~model:Failures defs ~spec ~impl

let fd_refines ?config defs ~spec ~impl =
  check ?config ~model:Failures_divergences defs ~spec ~impl

(* Resuming recompiles the specification (and, for FD, the implementation)
   without a deadline — a checkpoint only exists if those compiles
   completed, and they are deterministic — then hands the checkpoint to
   the engine, which fast-forwards the replay and arms [config.deadline]
   (or the checkpoint's unconsumed budget) at the crossing point. *)
let resume ?(config = Check_config.default) ?model ~checkpoint defs ~spec
    ~impl =
  let model = Option.value model ~default:Traces in
  let max_pairs = Option.value config.max_pairs ~default:config.max_states in
  match model with
  | Traces ->
    product_check ~config ~refusal_mode:`None ~max_pairs
      ~resume_from:checkpoint defs ~spec ~impl
  | Failures ->
    product_check ~config ~refusal_mode:`Acceptances ~max_pairs
      ~resume_from:checkpoint defs ~spec ~impl
  | Failures_divergences ->
    fd_check ~config ~max_pairs ~resume_from:checkpoint defs ~spec ~impl

let resume_deterministic ?(config = Check_config.default) ~checkpoint defs
    proc =
  let max_pairs = Option.value config.max_pairs ~default:config.max_states in
  product_check ~config ~refusal_mode:`Full ~max_pairs
    ~resume_from:checkpoint defs ~spec:proc ~impl:proc

let lts_inconclusive progress =
  let exhausted =
    match progress.Lts.reason with `States -> States | `Deadline -> Deadline
  in
  Inconclusive
    ( Search.make_stats ~impl_states:progress.Lts.explored ~spec_nodes:0
        ~pairs:0 (),
      {
        frontier = progress.Lts.frontier;
        deepest = [];
        exhausted;
        checkpoint = None;
      } )

(* Deadlock/divergence freedom: compile the graph, find the offending
   states, and BFS a shortest path to one. The offender set is looked up
   through a bitset, not a list scan. *)
let bad_state_check ~violation ~find ~(config : Check_config.t) defs proc =
  let t0 = Obs.now () in
  match
    cached_graph ~config
      ?stop_at:(stop_at_of_deadline config.deadline) defs proc
  with
  | Lts.Partial (_, progress) -> lts_inconclusive progress
  | Lts.Complete lts ->
    (match find lts with
     | [] ->
       (* [workers] deliberately left at [make_stats]'s default of 1:
          graph compilation and the offender scan are sequential, so the
          stats must not echo a requested pool size that did no work. *)
       Holds
         (Search.make_stats
            ~wall_s:(Obs.now () -. t0)
            ~impl_states:(Lts.num_states lts) ~spec_nodes:0 ~pairs:0 ())
     | bad ->
       let bits = Array.make (max 1 (Lts.num_states lts)) false in
       List.iter (fun i -> bits.(i) <- true) bad;
       (match Lts.path_to lts (fun i -> bits.(i)) with
        | None -> invalid_arg "Refine.check: flagged state has no path"
        | Some (labels, i) ->
          Fails
            {
              trace = visible_trace labels;
              violation;
              impl_state = Lts.state_term lts i;
            }))

(* [config.workers] is ignored by these two: graph compilation and the
   offender scan are sequential (unlike the product-search checks above),
   and their stats report [workers = 1] accordingly. *)
let deadlock_free ?(config = Check_config.default) defs proc =
  bad_state_check ~violation:Deadlock ~find:Lts.deadlocks ~config defs proc

let divergence_free ?(config = Check_config.default) defs proc =
  bad_state_check ~violation:Divergence ~find:Lts.divergences ~config defs
    proc

let deterministic ?(config = Check_config.default) defs proc =
  let max_pairs = Option.value config.max_pairs ~default:config.max_states in
  product_check ~config ~refusal_mode:`Full ~max_pairs
    ?stop_at:(stop_at_of_deadline config.deadline) defs ~spec:proc ~impl:proc

let holds = function
  | Holds _ -> true
  | Fails _ | Inconclusive _ -> false

let inconclusive = function
  | Inconclusive _ -> true
  | Holds _ | Fails _ -> false

let pp_labels ppf labels =
  match labels with
  | [] -> Format.pp_print_string ppf "<>"
  | _ ->
    Format.fprintf ppf "<%a>"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Event.pp_label)
      labels

let pp_violation ppf = function
  | Trace_violation l ->
    Format.fprintf ppf "trace violation: implementation performs %a"
      Event.pp_label l
  | Refusal_violation { offered; acceptances } ->
    Format.fprintf ppf
      "refusal violation: stable state offers %a but the specification \
       requires one of %a"
      pp_labels offered
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " / ")
         pp_labels)
      acceptances
  | Deadlock -> Format.pp_print_string ppf "deadlock"
  | Divergence -> Format.pp_print_string ppf "divergence (tau cycle)"

let pp_counterexample ppf cex =
  Format.fprintf ppf "@[<v 2>counterexample:@ trace = %a@ %a@ state = %a@]"
    pp_labels cex.trace pp_violation cex.violation Proc.pp cex.impl_state

let pp_budget_kind ppf = function
  | Deadline -> Format.pp_print_string ppf "deadline"
  | States -> Format.pp_print_string ppf "state budget"
  | Pairs -> Format.pp_print_string ppf "pair budget"
  | Interrupt -> Format.pp_print_string ppf "interrupted"
  | Memory -> Format.pp_print_string ppf "memory watermark"

let pp_resume_hint ppf hint =
  (* the deepest trace can be thousands of events long on a budget-limited
     run — show its depth and only the last few steps *)
  let depth = List.length hint.deepest in
  let max_shown = 12 in
  if depth <= max_shown then
    Format.fprintf ppf "%a exhausted; frontier = %d, deepest trace = %a"
      pp_budget_kind hint.exhausted hint.frontier pp_labels hint.deepest
  else
    let tail =
      List.filteri (fun i _ -> i >= depth - max_shown) hint.deepest
    in
    Format.fprintf ppf
      "%a exhausted; frontier = %d, deepest trace (depth %d) ends <..., %a"
      pp_budget_kind hint.exhausted hint.frontier depth
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Event.pp_label)
      tail;
    Format.pp_print_string ppf ">"

let pp_stats ppf stats =
  Format.fprintf ppf "%d impl states, %d spec nodes, %d pairs" stats.impl_states
    stats.spec_nodes stats.pairs;
  if stats.wall_s > 0. then
    Format.fprintf ppf "; %.3fs, %.0f states/s, peak frontier %d" stats.wall_s
      stats.states_per_sec stats.peak_frontier;
  if stats.workers > 1 then
    Format.fprintf ppf "; %d workers, ~%.2fx" stats.workers stats.par_speedup

let pp_result ppf = function
  | Holds stats -> Format.fprintf ppf "holds (%a)" pp_stats stats
  | Fails cex -> Format.fprintf ppf "FAILS@ %a" pp_counterexample cex
  | Inconclusive (stats, hint) ->
    Format.fprintf ppf "INCONCLUSIVE (%a)@ %a" pp_stats stats pp_resume_hint
      hint
