type violation =
  | Trace_violation of Event.label
  | Refusal_violation of {
      offered : Event.label list;
      acceptances : Event.label list list;
    }
  | Deadlock
  | Divergence

type counterexample = {
  trace : Event.label list;
  violation : violation;
  impl_state : Proc.t;
}

type stats = {
  impl_states : int;
  spec_nodes : int;
  pairs : int;
}

type budget_kind =
  | Deadline
  | States
  | Pairs

type resume_hint = {
  frontier : int;
  deepest : Event.label list;
  exhausted : budget_kind;
}

type result =
  | Holds of stats
  | Fails of counterexample
  | Inconclusive of stats * resume_hint

type model =
  | Traces
  | Failures
  | Failures_divergences

exception State_limit of int

(* Internal: unwound to an [Inconclusive] verdict at the top of each
   checker, where the current counters and frontier are in scope. *)
exception Out_of_budget of budget_kind

module Proc_tbl = Hashtbl.Make (struct
  type t = Proc.t
  let equal = Proc.equal
  let hash = Proc.hash
end)

module Pair_tbl = Hashtbl.Make (struct
  type t = int * int
  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end)

let visible_trace labels =
  List.filter
    (fun l -> match l with Event.Vis _ | Event.Tick -> true | Event.Tau -> false)
    labels

(* refusal_mode: what a stable implementation state must offer.
   `None: traces only. `Acceptances: some minimal acceptance of the node
   (stable-failures refinement). `Full: every label the normal form can
   perform (the determinism check). *)
(* Partial specification compilation cannot support a verdict: report it
   as inconclusive, attributing the exhausted budget. *)
let spec_inconclusive progress =
  let exhausted =
    match progress.Lts.reason with `States -> States | `Deadline -> Deadline
  in
  Inconclusive
    ( { impl_states = 0; spec_nodes = progress.Lts.explored; pairs = 0 },
      { frontier = progress.Lts.frontier; deepest = []; exhausted } )

let product_check ~refusal_mode ~max_states ~max_pairs ?stop_at defs ~spec
    ~impl =
  match Lts.compile_budgeted ~max_states ?stop_at defs spec with
  | Lts.Partial (_, progress) -> spec_inconclusive progress
  | Lts.Complete spec_lts ->
  let norm = Normalise.normalise spec_lts in
  let step = Semantics.make_cached defs in
  let fenv = Defs.fenv defs in
  let tys = Defs.ty_lookup defs in
  let impl0 = Proc.const_fold ~tys fenv impl in
  (* Intern implementation terms on the fly. *)
  let impl_index = Proc_tbl.create 1024 in
  let impl_term_of = Hashtbl.create 1024 in
  let impl_count = ref 0 in
  let intern_impl term =
    match Proc_tbl.find_opt impl_index term with
    | Some i -> i
    | None ->
      let i = !impl_count in
      incr impl_count;
      Proc_tbl.replace impl_index term i;
      Hashtbl.replace impl_term_of i term;
      i
  in
  let impl_term i = Hashtbl.find impl_term_of i in
  (* Product pairs (impl state, normal-form node). *)
  let pair_ids = Pair_tbl.create 4096 in
  let pair_count = ref 0 in
  let parents = Hashtbl.create 4096 in
  (* pair id -> (label, parent pair id) option *)
  let queue = Queue.create () in
  let intern_pair parent pair =
    if not (Pair_tbl.mem pair_ids pair) then begin
      if !pair_count >= max_pairs then raise (Out_of_budget Pairs);
      Pair_tbl.replace pair_ids pair !pair_count;
      Hashtbl.replace parents !pair_count parent;
      incr pair_count;
      Queue.add pair queue
    end
  in
  let rec trace_to id =
    match Hashtbl.find parents id with
    | None -> []
    | Some (l, p) -> trace_to p @ [ l ]
  in
  let counterexample pair_id extra violation impl_i =
    let labels = trace_to pair_id @ extra in
    {
      trace = visible_trace labels;
      violation;
      impl_state = impl_term impl_i;
    }
  in
  (* Pairs are dequeued in BFS order, so the most recently dequeued pair
     lies on a deepest explored path — the natural resume hint. *)
  let explored = ref 0 in
  let last_dequeued = ref 0 in
  let over_deadline () =
    match stop_at with
    | Some limit -> !explored > 0 && Unix.gettimeofday () > limit
    | None -> false
  in
  let current_stats () =
    {
      impl_states = !impl_count;
      spec_nodes = Normalise.num_nodes norm;
      pairs = !pair_count;
    }
  in
  intern_pair None (intern_impl impl0, Normalise.initial norm);
  let rec search () =
    (* an empty queue is a completed search: the verdict stands even if
       the deadline expired while reaching it *)
    if Queue.is_empty queue then Holds (current_stats ())
    else if over_deadline () then raise (Out_of_budget Deadline)
    else
    match Queue.take_opt queue with
    | None -> Holds (current_stats ())
    | Some ((impl_i, node) as pair) ->
      let pair_id = Pair_tbl.find pair_ids pair in
      last_dequeued := pair_id;
      incr explored;
      let term = impl_term impl_i in
      let ts = step term in
      let stable =
        not
          (List.exists
             (fun (l, _) -> match l with Event.Tau -> true | _ -> false)
             ts)
      in
      let refusal_failure =
        if refusal_mode <> `None && stable then begin
          let offered =
            List.sort_uniq Event.compare_label (List.map fst ts)
          in
          let accs =
            match refusal_mode with
            | `Acceptances -> Normalise.acceptances norm node
            | `Full ->
              [ List.sort_uniq Event.compare_label
                  (List.map fst (Normalise.afters norm node)) ]
            | `None -> []
          in
          let covered =
            List.exists
              (fun acc -> List.for_all (fun l -> List.mem l offered) acc)
              accs
          in
          if covered then None
          else
            Some
              (counterexample pair_id []
                 (Refusal_violation { offered; acceptances = accs })
                 impl_i)
        end
        else None
      in
      (match refusal_failure with
       | Some cex -> Fails cex
       | None ->
         let violation =
           List.find_map
             (fun (l, target) ->
               match l with
               | Event.Tau ->
                 intern_pair (Some (l, pair_id)) (intern_impl target, node);
                 None
               | Event.Tick | Event.Vis _ ->
                 (match Normalise.after norm node l with
                  | Some node' ->
                    intern_pair (Some (l, pair_id)) (intern_impl target, node');
                    None
                  | None ->
                    Some
                      (counterexample pair_id [ l ] (Trace_violation l) impl_i)))
             ts
         in
         (match violation with
          | Some cex -> Fails cex
          | None -> search ()))
  in
  (try search ()
   with Out_of_budget kind ->
     (* A [Pairs] exhaustion is raised on the pair that failed to intern;
        it is discovered-but-unexplored work, so it counts as frontier. *)
     let frontier =
       Queue.length queue + (match kind with Pairs -> 1 | _ -> 0)
     in
     Inconclusive
       ( current_stats (),
         {
           frontier;
           deepest = visible_trace (trace_to !last_dequeued);
           exhausted = kind;
         } ))

(* Failures-divergences refinement: both sides are compiled to explicit
   graphs (divergence detection needs the tau-SCCs of the implementation),
   then the product is explored. Under a divergent specification node
   everything is allowed, so that subtree is pruned; a divergent
   implementation state under a non-divergent node is a violation. *)
let fd_check ~max_states ~max_pairs ?stop_at defs ~spec ~impl =
  match Lts.compile_budgeted ~max_states ?stop_at defs spec with
  | Lts.Partial (_, progress) -> spec_inconclusive progress
  | Lts.Complete spec_lts ->
  let norm = Normalise.normalise spec_lts in
  match Lts.compile_budgeted ~max_states ?stop_at defs impl with
  | Lts.Partial (_, progress) ->
    (* Divergence detection needs the full tau graph of the
       implementation; a partial compile cannot support a verdict. *)
    let exhausted =
      match progress.Lts.reason with
      | `States -> States
      | `Deadline -> Deadline
    in
    Inconclusive
      ( {
          impl_states = progress.Lts.explored;
          spec_nodes = Normalise.num_nodes norm;
          pairs = 0;
        },
        { frontier = progress.Lts.frontier; deepest = []; exhausted } )
  | Lts.Complete impl_lts ->
  let impl_div = Lts.divergences impl_lts in
  let pair_ids = Pair_tbl.create 4096 in
  let pair_count = ref 0 in
  let parents = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let intern_pair parent pair =
    if not (Pair_tbl.mem pair_ids pair) then begin
      if !pair_count >= max_pairs then raise (Out_of_budget Pairs);
      Pair_tbl.replace pair_ids pair !pair_count;
      Hashtbl.replace parents !pair_count parent;
      incr pair_count;
      Queue.add pair queue
    end
  in
  let rec trace_to id =
    match Hashtbl.find parents id with
    | None -> []
    | Some (l, p) -> trace_to p @ [ l ]
  in
  let counterexample pair_id extra violation impl_i =
    {
      trace = visible_trace (trace_to pair_id @ extra);
      violation;
      impl_state = Lts.state_term impl_lts impl_i;
    }
  in
  let explored = ref 0 in
  let last_dequeued = ref 0 in
  let over_deadline () =
    match stop_at with
    | Some limit -> !explored > 0 && Unix.gettimeofday () > limit
    | None -> false
  in
  let current_stats () =
    {
      impl_states = Lts.num_states impl_lts;
      spec_nodes = Normalise.num_nodes norm;
      pairs = !pair_count;
    }
  in
  intern_pair None (impl_lts.Lts.initial, Normalise.initial norm);
  let rec search () =
    (* an empty queue is a completed search: the verdict stands even if
       the deadline expired while reaching it *)
    if Queue.is_empty queue then Holds (current_stats ())
    else if over_deadline () then raise (Out_of_budget Deadline)
    else
    match Queue.take_opt queue with
    | None -> Holds (current_stats ())
    | Some ((impl_i, node) as pair) ->
      let pair_id = Pair_tbl.find pair_ids pair in
      last_dequeued := pair_id;
      incr explored;
      if Normalise.divergent norm node then search ()
      else begin
        if List.mem impl_i impl_div then
          Fails (counterexample pair_id [] Divergence impl_i)
        else begin
          let ts = Lts.transitions_of impl_lts impl_i in
          let stable = Lts.is_stable impl_lts impl_i in
          let refusal_failure =
            if stable then begin
              let offered =
                List.sort_uniq Event.compare_label (List.map fst ts)
              in
              let accs = Normalise.acceptances norm node in
              if
                List.exists
                  (fun acc -> List.for_all (fun l -> List.mem l offered) acc)
                  accs
              then None
              else
                Some
                  (counterexample pair_id []
                     (Refusal_violation { offered; acceptances = accs })
                     impl_i)
            end
            else None
          in
          match refusal_failure with
          | Some cex -> Fails cex
          | None ->
            let violation =
              List.find_map
                (fun (l, target) ->
                  match l with
                  | Event.Tau ->
                    intern_pair (Some (l, pair_id)) (target, node);
                    None
                  | Event.Tick | Event.Vis _ ->
                    (match Normalise.after norm node l with
                     | Some node' ->
                       intern_pair (Some (l, pair_id)) (target, node');
                       None
                     | None ->
                       Some
                         (counterexample pair_id [ l ] (Trace_violation l)
                            impl_i)))
                ts
            in
            (match violation with
             | Some cex -> Fails cex
             | None -> search ())
        end
      end
  in
  (try search ()
   with Out_of_budget kind ->
     (* A [Pairs] exhaustion is raised on the pair that failed to intern;
        it is discovered-but-unexplored work, so it counts as frontier. *)
     let frontier =
       Queue.length queue + (match kind with Pairs -> 1 | _ -> 0)
     in
     Inconclusive
       ( current_stats (),
         {
           frontier;
           deepest = visible_trace (trace_to !last_dequeued);
           exhausted = kind;
         } ))

let stop_at_of_deadline = function
  | None -> None
  | Some seconds -> Some (Unix.gettimeofday () +. seconds)

let check ?(model = Traces) ?(max_states = 1_000_000) ?max_pairs ?deadline
    defs ~spec ~impl =
  let max_pairs = Option.value max_pairs ~default:max_states in
  let stop_at = stop_at_of_deadline deadline in
  match model with
  | Traces ->
    product_check ~refusal_mode:`None ~max_states ~max_pairs ?stop_at defs
      ~spec ~impl
  | Failures ->
    product_check ~refusal_mode:`Acceptances ~max_states ~max_pairs ?stop_at
      defs ~spec ~impl
  | Failures_divergences ->
    fd_check ~max_states ~max_pairs ?stop_at defs ~spec ~impl

let traces_refines ?max_states ?deadline defs ~spec ~impl =
  check ~model:Traces ?max_states ?deadline defs ~spec ~impl

let failures_refines ?max_states ?deadline defs ~spec ~impl =
  check ~model:Failures ?max_states ?deadline defs ~spec ~impl

let fd_refines ?max_states ?deadline defs ~spec ~impl =
  check ~model:Failures_divergences ?max_states ?deadline defs ~spec ~impl

let lts_stats lts =
  { impl_states = Lts.num_states lts; spec_nodes = 0; pairs = 0 }

let lts_inconclusive progress =
  let exhausted =
    match progress.Lts.reason with `States -> States | `Deadline -> Deadline
  in
  Inconclusive
    ( { impl_states = progress.Lts.explored; spec_nodes = 0; pairs = 0 },
      { frontier = progress.Lts.frontier; deepest = []; exhausted } )

let deadlock_free ?(max_states = 1_000_000) ?deadline defs proc =
  match
    Lts.compile_budgeted ~max_states
      ?stop_at:(stop_at_of_deadline deadline) defs proc
  with
  | Lts.Partial (_, progress) -> lts_inconclusive progress
  | Lts.Complete lts ->
    (match Lts.deadlocks lts with
     | [] -> Holds (lts_stats lts)
     | dead ->
       let is_dead i = List.mem i dead in
       (match Lts.path_to lts is_dead with
        | None -> assert false
        | Some (labels, i) ->
          Fails
            {
              trace = visible_trace labels;
              violation = Deadlock;
              impl_state = Lts.state_term lts i;
            }))

let divergence_free ?(max_states = 1_000_000) ?deadline defs proc =
  match
    Lts.compile_budgeted ~max_states
      ?stop_at:(stop_at_of_deadline deadline) defs proc
  with
  | Lts.Partial (_, progress) -> lts_inconclusive progress
  | Lts.Complete lts ->
    (match Lts.divergences lts with
     | [] -> Holds (lts_stats lts)
     | div ->
       let is_div i = List.mem i div in
       (match Lts.path_to lts is_div with
        | None -> assert false
        | Some (labels, i) ->
          Fails
            {
              trace = visible_trace labels;
              violation = Divergence;
              impl_state = Lts.state_term lts i;
            }))

let deterministic ?(max_states = 1_000_000) ?deadline defs proc =
  product_check ~refusal_mode:`Full ~max_states ~max_pairs:max_states
    ?stop_at:(stop_at_of_deadline deadline) defs ~spec:proc ~impl:proc

let holds = function
  | Holds _ -> true
  | Fails _ | Inconclusive _ -> false

let inconclusive = function
  | Inconclusive _ -> true
  | Holds _ | Fails _ -> false

let pp_labels ppf labels =
  match labels with
  | [] -> Format.pp_print_string ppf "<>"
  | _ ->
    Format.fprintf ppf "<%a>"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Event.pp_label)
      labels

let pp_violation ppf = function
  | Trace_violation l ->
    Format.fprintf ppf "trace violation: implementation performs %a"
      Event.pp_label l
  | Refusal_violation { offered; acceptances } ->
    Format.fprintf ppf
      "refusal violation: stable state offers %a but the specification \
       requires one of %a"
      pp_labels offered
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " / ")
         pp_labels)
      acceptances
  | Deadlock -> Format.pp_print_string ppf "deadlock"
  | Divergence -> Format.pp_print_string ppf "divergence (tau cycle)"

let pp_counterexample ppf cex =
  Format.fprintf ppf "@[<v 2>counterexample:@ trace = %a@ %a@ state = %a@]"
    pp_labels cex.trace pp_violation cex.violation Proc.pp cex.impl_state

let pp_budget_kind ppf = function
  | Deadline -> Format.pp_print_string ppf "deadline"
  | States -> Format.pp_print_string ppf "state budget"
  | Pairs -> Format.pp_print_string ppf "pair budget"

let pp_resume_hint ppf hint =
  (* the deepest trace can be thousands of events long on a budget-limited
     run — show its depth and only the last few steps *)
  let depth = List.length hint.deepest in
  let max_shown = 12 in
  if depth <= max_shown then
    Format.fprintf ppf "%a exhausted; frontier = %d, deepest trace = %a"
      pp_budget_kind hint.exhausted hint.frontier pp_labels hint.deepest
  else
    let tail =
      List.filteri (fun i _ -> i >= depth - max_shown) hint.deepest
    in
    Format.fprintf ppf
      "%a exhausted; frontier = %d, deepest trace (depth %d) ends <..., %a"
      pp_budget_kind hint.exhausted hint.frontier depth
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Event.pp_label)
      tail;
    Format.pp_print_string ppf ">"

let pp_result ppf = function
  | Holds stats ->
    Format.fprintf ppf "holds (%d impl states, %d spec nodes, %d pairs)"
      stats.impl_states stats.spec_nodes stats.pairs
  | Fails cex -> Format.fprintf ppf "FAILS@ %a" pp_counterexample cex
  | Inconclusive (stats, hint) ->
    Format.fprintf ppf
      "INCONCLUSIVE (%d impl states, %d spec nodes, %d pairs)@ %a"
      stats.impl_states stats.spec_nodes stats.pairs pp_resume_hint hint
