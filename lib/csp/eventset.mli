(** Symbolic sets of visible events, used for synchronization alphabets,
    hiding sets and interface parallel.

    Sets are kept symbolic ([{| c |}]-style channel productions, explicit
    event lists, unions and differences) so that membership testing — all
    the operational semantics needs — never requires enumerating channel
    domains. Enumeration is available when a channel-domain oracle is
    supplied (e.g. for [RUN] and intruder construction). *)

type t

val empty : t
val chan : string -> t
(** All events on one channel: CSPm [{| c |}]. *)

val chans : string list -> t

val prefixed : string -> Value.t list -> t
(** FDR-style partial production [{| c.v1...vk |}]: every event on channel
    [c] whose first [k] arguments equal the given values. With an empty
    prefix this is just [chan c]. *)

val events : Event.t list -> t
val union : t -> t -> t
val union_all : t list -> t
val diff : t -> t -> t

val mem : t -> Event.t -> bool
val is_empty_syntactically : t -> bool
(** True only for sets built from [empty]/empty lists (no oracle needed). *)

val channels_mentioned : t -> string list
(** Channel names appearing anywhere in the set expression (sorted). *)

val enumerate : chan_events:(string -> Event.t list) -> t -> Event.t list
(** Concrete elements, sorted and deduplicated. [chan_events c] must return
    every event on channel [c]. *)

val equal : t -> t -> bool
(** Syntactic equality of the set expressions (not extensional). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
