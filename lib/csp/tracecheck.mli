(** Streaming trace containment: check recorded traces against a
    specification at constant memory per stream.

    Refinement checking explores the product of the specification's
    normal form with the implementation's state space. Offline runtime
    verification (Luckcuck, PAPERS.md) needs much less: the recorded
    execution {e is} the implementation, a single trace, so checking it
    is trace membership — walk the specification's normal form one
    visible event at a time. No search, no frontier; a cursor is one
    node index, so millions of concurrent streams fit in memory and
    every stream is independent (embarrassingly parallel across
    domains).

    The specification is compiled once per check ({!compile}, fronted by
    the content-addressed {!Cache} exactly like [Refine]); the per-event
    step is a hash-table lookup on the current node. *)

type t
(** A compiled checker: the specification's normal form with per-node
    [label -> node] transition tables and the derived channel
    alphabet. Immutable after {!compile}; safe to share across
    domains. *)

val compile :
  ?config:Check_config.t ->
  ?alphabet:string list ->
  Defs.t ->
  Proc.t ->
  (t, string) result
(** Compile and normalise the specification ([config] supplies the state
    budget, observability handle, and the optional {!Cache} — a warm
    cache hit does no graph work). [Error] reports a specification that
    exhausted its compile budget.

    [alphabet] is the set of channels the checker considers observable.
    Events on channels outside it are {e skipped}, not rejected — a
    recorded log usually contains traffic the requirement never
    mentions, and trace containment is defined over the specification's
    alphabet. Defaults to the channels reachable in the normal form. *)

val alphabet : t -> string list
(** Sorted observable channels. *)

val num_nodes : t -> int

(** {1 Cursors}

    A cursor is the O(1) per-stream state: current normal-form node,
    events consumed, and the latched verdict. Cursors are immutable
    values — {!step} returns a new cursor — so streams can be advanced
    from any domain without synchronisation. *)

type verdict =
  | Accepted
  | Rejected of {
      position : int;
          (** 0-based index of the offending label among the labels fed
              to the cursor (tau excluded) *)
      offending : Event.label;
      expected : Event.label list;
          (** the labels the specification allowed at that point *)
    }

type cursor

val start : t -> cursor

val step : t -> cursor -> Event.label -> cursor
(** Advance by one label. Out-of-alphabet events and [Tau] are skipped
    ([Tau] does not count a position); [Tick] is accepted only where the
    specification can terminate and pins the cursor to a terminal state
    (any later label rejects). Once rejected, the verdict latches and
    further steps are no-ops. *)

val verdict : cursor -> verdict
val consumed : cursor -> int
(** Labels fed so far (tau excluded), including skipped ones. *)

val skipped : cursor -> int
(** Out-of-alphabet events skipped so far. *)

val check_trace : t -> Event.label list -> verdict

(** {1 Batched streams} *)

type stream_result = {
  stream : string;  (** caller-chosen stream identifier *)
  events : int;  (** labels consumed *)
  skipped_events : int;
  verdict : verdict;
}

type summary = {
  streams : int;
  accepted : int;
  rejected : int;
  events : int;
  skipped_events : int;
  wall_s : float;
  events_per_sec : float;
}

val check_streams :
  ?workers:int ->
  ?obs:Obs.t ->
  t ->
  (string * Event.label Seq.t) array ->
  stream_result array * summary
(** Check every stream to completion, [workers] domains wide (default
    1). Results are positional — element [i] is the verdict of stream
    [i] — so the output is deterministic at any worker count. Sequences
    must be persistent or freshly-built (each is forced exactly once,
    on whichever domain claims it). [obs] receives the
    [tracecheck.events] / [tracecheck.streams] counters, a
    [tracecheck.events_per_sec] histogram observation, and a
    [tracecheck.check_streams] span. *)
