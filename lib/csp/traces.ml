type trace = Event.label list

type set = trace list

exception Unguarded of string

let compare_trace = List.compare Event.compare_label

let normalize set = List.sort_uniq compare_trace set

let is_prefix tr1 tr2 =
  let rec go t1 t2 =
    match t1, t2 with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs, y :: ys -> Event.equal_label x y && go xs ys
  in
  go tr1 tr2

let hide set tr =
  List.filter
    (fun l ->
      match l with
      | Event.Vis e -> not (Eventset.mem set e)
      | Event.Tau -> false
      | Event.Tick -> true)
    tr

(* The paper's five merge equations, with [Tick] treated as a synchronized
   pseudo-event (the {m A \cup \{\checkmark\}} of generalized parallel). *)
let merge ~sync tr1 tr2 =
  let synced l =
    match l with
    | Event.Tick -> true
    | Event.Vis e -> sync e
    | Event.Tau -> false
  in
  let rec go tr1 tr2 =
    match tr1, tr2 with
    | [], [] -> [ [] ]
    | [], l :: rest ->
      if synced l then [] else List.map (fun tr -> l :: tr) (go [] rest)
    | l :: rest, [] ->
      if synced l then [] else List.map (fun tr -> l :: tr) (go rest [])
    | l1 :: rest1, l2 :: rest2 ->
      let left =
        if synced l1 then []
        else List.map (fun tr -> l1 :: tr) (go rest1 tr2)
      in
      let right =
        if synced l2 then []
        else List.map (fun tr -> l2 :: tr) (go tr1 rest2)
      in
      let both =
        if synced l1 && Event.equal_label l1 l2 then
          List.map (fun tr -> l1 :: tr) (go rest1 rest2)
        else []
      in
      left @ right @ both
  in
  normalize (go tr1 tr2)

let prefix_closure set =
  let rec prefixes tr =
    match tr with
    | [] -> [ [] ]
    | l :: rest -> [] :: List.map (fun p -> l :: p) (prefixes rest)
  in
  normalize (List.concat_map prefixes set)

let is_prefix_closed set =
  List.for_all (fun tr -> List.exists (fun t -> compare_trace t tr = 0) set)
    (prefix_closure set)

let subset s1 s2 =
  List.for_all (fun tr -> List.exists (fun t -> compare_trace t tr = 0) s2) s1

let visible_length tr =
  List.length (List.filter (fun l -> l <> Event.Tick) tr)

(* Unfolding budget while no visible event is produced, mirroring
   Semantics.unfold_limit. *)
let unfold_limit = 1_000

let of_proc ?(depth = 6) defs proc =
  let fenv = Defs.fenv defs in
  let tys = Defs.ty_lookup defs in
  let fold p = Proc.const_fold ~tys fenv p in
  let all_seqs events n =
    (* every sequence over [events] of length <= n *)
    let rec go n =
      if n = 0 then [ [] ]
      else
        []
        :: List.concat_map
             (fun e -> List.map (fun tr -> Event.Vis e :: tr) (go (n - 1)))
             events
    in
    normalize (go n)
  in
  let rec go unfolds n p =
    if unfolds > unfold_limit then raise (Unguarded (Proc.to_string p));
    match Proc.view p with
    | Proc.Stop | Proc.Omega -> [ [] ]
    | Proc.Skip -> [ []; [ Event.Tick ] ]
    | Proc.Prefix _ ->
      (* Expand the (possibly input-binding) prefix into its ground
         communications via the shared expansion, then apply the paper's
         equation traces(e -> P) = {<>} u {<e> ^ tr | tr in traces(P)}. *)
      let expansions = Semantics.transitions defs p in
      if n = 0 then [ [] ]
      else
        []
        :: List.concat_map
             (fun (l, cont) ->
               match l with
               | Event.Vis _ ->
                 List.map (fun tr -> l :: tr) (go 0 (n - 1) cont)
               | Event.Tau | Event.Tick -> [])
             expansions
        |> normalize
    | Proc.Ext (p1, p2) | Proc.Int (p1, p2) ->
      normalize (go unfolds n p1 @ go unfolds n p2)
    | Proc.Seq (p1, p2) ->
      let t1 = go unfolds n p1 in
      let incomplete =
        List.filter (fun tr -> not (List.mem Event.Tick tr)) t1
      in
      let continued =
        List.concat_map
          (fun tr ->
            match List.rev tr with
            | Event.Tick :: rev_body ->
              let body = List.rev rev_body in
              let remaining = n - visible_length body in
              List.map (fun tr2 -> body @ tr2) (go 0 remaining p2)
            | _ -> [])
          t1
      in
      normalize (incomplete @ continued)
    | Proc.Par (p1, iface, p2) ->
      let sync e = Eventset.mem iface e in
      merge_sets ~sync (go unfolds n p1) (go unfolds n p2) n
    | Proc.APar (p1, alpha_a, alpha_b, p2) ->
      (* Restrict each side to its alphabet, then synchronize on the
         intersection. *)
      let t1 =
        List.filter
          (List.for_all (fun l ->
               match l with
               | Event.Vis e -> Eventset.mem alpha_a e
               | Event.Tau | Event.Tick -> true))
          (go unfolds n p1)
      in
      let t2 =
        List.filter
          (List.for_all (fun l ->
               match l with
               | Event.Vis e -> Eventset.mem alpha_b e
               | Event.Tau | Event.Tick -> true))
          (go unfolds n p2)
      in
      let sync e = Eventset.mem alpha_a e && Eventset.mem alpha_b e in
      merge_sets ~sync t1 t2 n
    | Proc.Inter (p1, p2) ->
      merge_sets ~sync:(fun _ -> false) (go unfolds n p1) (go unfolds n p2) n
    | Proc.Interrupt (p1, p2) ->
      (* traces(P) u { s ^ t | s in traces(P) n Sigma*, t in traces(Q) } *)
      let t1 = go unfolds n p1 in
      let t2 = go unfolds n p2 in
      let unfinished =
        List.filter (fun tr -> not (List.mem Event.Tick tr)) t1
      in
      let combined =
        List.concat_map
          (fun s ->
            let remaining = n - visible_length s in
            List.filter_map
              (fun t ->
                if visible_length t <= remaining then Some (s @ t) else None)
              t2)
          unfinished
      in
      normalize (t1 @ combined)
    | Proc.Timeout (p1, p2) ->
      normalize (go unfolds n p1 @ go unfolds n p2)
    | Proc.Hide (p1, set) ->
      (* Hidden events do not count towards the visible-length bound, so
         explore deeper underneath; the added slack is bounded. *)
      let inner = go unfolds (n + n + 2) p1 in
      normalize
        (List.filter_map
           (fun tr ->
             let tr' = hide set tr in
             if visible_length tr' <= n then Some tr' else None)
           inner)
    | Proc.Rename (p1, mapping) ->
      let rename l =
        match l with
        | Event.Vis e ->
          let chan =
            match List.assoc_opt e.Event.chan mapping with
            | Some c -> c
            | None -> e.Event.chan
          in
          Event.Vis { e with Event.chan }
        | Event.Tau | Event.Tick -> l
      in
      normalize (List.map (List.map rename) (go unfolds n p1))
    | Proc.If _ | Proc.Guard _ | Proc.Ext_over _ | Proc.Int_over _
    | Proc.Inter_over _ ->
      let folded = fold p in
      if Proc.equal folded p then raise (Unguarded (Proc.to_string p))
      else go (unfolds + 1) n folded
    | Proc.Call (f, args) ->
      (match Defs.proc defs f with
       | None -> raise (Unguarded ("unknown process " ^ f))
       | Some (params, body) ->
         let values =
           List.map (fun e -> Expr.eval ~tys fenv Expr.empty_env e) args
         in
         let bindings = List.combine params values in
         let resolve x = List.assoc_opt x bindings in
         go (unfolds + 1) n (fold (Proc.subst resolve body)))
    | Proc.Run set -> all_seqs (Defs.events_of defs set) n
    | Proc.Chaos set -> all_seqs (Defs.events_of defs set) n
  and merge_sets ~sync t1 t2 n =
    List.concat_map
      (fun tr1 -> List.concat_map (fun tr2 -> merge ~sync tr1 tr2) t2)
      t1
    |> List.filter (fun tr -> visible_length tr <= n)
    |> normalize
  in
  go 0 depth (fold proc)

let of_lts ?(depth = 6) lts =
  let module Key = struct
    type t = int list * int
    let equal (m1, n1) (m2, n2) = n1 = n2 && List.equal Int.equal m1 m2
    let hash = Hashtbl.hash
  end in
  let module Tbl = Hashtbl.Make (Key) in
  let memo = Tbl.create 256 in
  let rec go members n =
    (* [members] is tau-closed and sorted. *)
    match Tbl.find_opt memo (members, n) with
    | Some set -> set
    | None ->
      let ticks =
        if
          List.exists
            (fun m ->
              List.exists
                (fun (l, _) -> match l with Event.Tick -> true | _ -> false)
                (Lts.transitions_of lts m))
            members
        then [ [ Event.Tick ] ]
        else []
      in
      let continued =
        if n = 0 then []
        else
          List.concat_map
            (fun m ->
              List.concat_map
                (fun (l, j) ->
                  match l with
                  | Event.Vis _ ->
                    List.map
                      (fun tr -> l :: tr)
                      (go (Lts.tau_closure lts [ j ]) (n - 1))
                  | Event.Tau | Event.Tick -> [])
                (Lts.transitions_of lts m))
            members
      in
      let set = normalize (([] :: ticks) @ continued) in
      Tbl.replace memo (members, n) set;
      set
  in
  go (Lts.tau_closure lts [ lts.Lts.initial ]) depth

let pp_trace ppf tr =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Event.pp_label)
    tr

let pp ppf set =
  Format.fprintf ppf "{@[<hov>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_trace)
    set
