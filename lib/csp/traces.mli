(** Finite-trace semantics, implemented literally from the recursive
    equations of Section IV-A2 of the paper.

    A trace is a sequence of visible events possibly terminated by [Tick]
    (the paper's {m \Sigma^{*\checkmark}}). [of_proc] computes the trace set
    denotationally by structural recursion with the paper's operator
    equations; [of_lts] harvests the trace set from an explicit LTS. The
    two agree on every process — a property the test suite checks — which
    differentially validates the operational semantics against the paper's
    definitions. *)

type trace = Event.label list
(** Visible labels, with [Tick] allowed only in final position. [Tau] never
    appears in a trace. *)

type set = trace list
(** Sorted and deduplicated. *)

exception Unguarded of string

val of_proc : ?depth:int -> Defs.t -> Proc.t -> set
(** Traces with at most [depth] (default 6) visible events, computed from
    the paper's denotational equations.
    @raise Unguarded on unguarded recursion. *)

val of_lts : ?depth:int -> Lts.t -> set
(** Traces of at most [depth] visible events harvested operationally. *)

(** {1 Trace operators (paper Section IV-A2)} *)

val is_prefix : trace -> trace -> bool
(** [is_prefix tr1 tr2] is the paper's {m tr_1 \le tr_2}. *)

val hide : Eventset.t -> trace -> trace
(** [tr \ A]: drop events of [A] (and [Tick] is never hidden). *)

val merge : sync:(Event.t -> bool) -> trace -> trace -> trace list
(** [merge ~sync tr1 tr2] is the paper's {m tr_1 \|_A tr_2}: all ways of
    interleaving the two traces while synchronizing events satisfying
    [sync] and [Tick]. *)

val prefix_closure : set -> set
(** Close a trace set under prefixes. *)

val is_prefix_closed : set -> bool

val subset : set -> set -> bool
(** Trace-set inclusion, i.e. the denotational statement of
    {m Q \sqsubseteq_T P}. *)

val pp_trace : Format.formatter -> trace -> unit
val pp : Format.formatter -> set -> unit
