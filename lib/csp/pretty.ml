let rec pp_proc ppf (p : Proc.t) =
  match Proc.view p with
  | Proc.Stop -> Format.pp_print_string ppf "Stop"
  | Proc.Skip -> Format.pp_print_string ppf "Skip"
  | Proc.Omega -> Format.pp_print_string ppf "Ω"
  | Proc.Prefix (c, items, cont) ->
    Format.pp_print_string ppf c;
    List.iter
      (fun item ->
        match item with
        | Proc.Out e -> Format.fprintf ppf "!%a" Expr.pp e
        | Proc.In (x, None) -> Format.fprintf ppf "?%s" x
        | Proc.In (x, Some s) -> Format.fprintf ppf "?%s:%a" x Expr.pp s)
      items;
    Format.fprintf ppf " → %a" pp_atom cont
  | Proc.Ext (a, b) -> Format.fprintf ppf "%a □ %a" pp_atom a pp_atom b
  | Proc.Int (a, b) -> Format.fprintf ppf "%a ⊓ %a" pp_atom a pp_atom b
  | Proc.Seq (a, b) -> Format.fprintf ppf "%a ; %a" pp_atom a pp_atom b
  | Proc.Par (a, set, b) ->
    Format.fprintf ppf "%a ∥_%a %a" pp_atom a Eventset.pp set pp_atom b
  | Proc.APar (a, sa, sb, b) ->
    Format.fprintf ppf "%a %a∥%a %a" pp_atom a Eventset.pp sa Eventset.pp sb
      pp_atom b
  | Proc.Inter (a, b) -> Format.fprintf ppf "%a ||| %a" pp_atom a pp_atom b
  | Proc.Interrupt (a, b) -> Format.fprintf ppf "%a △ %a" pp_atom a pp_atom b
  | Proc.Timeout (a, b) -> Format.fprintf ppf "%a ▷ %a" pp_atom a pp_atom b
  | Proc.Hide (a, set) ->
    Format.fprintf ppf "%a \\ %a" pp_atom a Eventset.pp set
  | Proc.Rename (a, m) ->
    Format.fprintf ppf "%a⟦%a⟧" pp_atom a
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (x, y) -> Format.fprintf ppf "%s ↦ %s" x y))
      m
  | Proc.If (c, a, b) ->
    Format.fprintf ppf "if %a then %a else %a" Expr.pp c pp_atom a pp_atom b
  | Proc.Guard (c, a) -> Format.fprintf ppf "%a & %a" Expr.pp c pp_atom a
  | Proc.Call (f, []) -> Format.pp_print_string ppf f
  | Proc.Call (f, args) -> Format.fprintf ppf "%s(%a)" f Expr.pp_list args
  | Proc.Ext_over (x, s, a) ->
    Format.fprintf ppf "□ %s:%a • %a" x Expr.pp s pp_atom a
  | Proc.Int_over (x, s, a) ->
    Format.fprintf ppf "⊓ %s:%a • %a" x Expr.pp s pp_atom a
  | Proc.Inter_over (x, s, a) ->
    Format.fprintf ppf "||| %s:%a • %a" x Expr.pp s pp_atom a
  | Proc.Run set -> Format.fprintf ppf "Run(%a)" Eventset.pp set
  | Proc.Chaos set -> Format.fprintf ppf "Chaos(%a)" Eventset.pp set

and pp_atom ppf p =
  match Proc.view p with
  | Proc.Stop | Proc.Skip | Proc.Omega | Proc.Call _ | Proc.Run _
  | Proc.Chaos _ ->
    pp_proc ppf p
  | _ -> Format.fprintf ppf "(%a)" pp_proc p

let proc_to_string p = Format.asprintf "%a" pp_proc p

let pp_label ppf = function
  | Event.Tau -> Format.pp_print_string ppf "τ"
  | Event.Tick -> Format.pp_print_string ppf "✓"
  | Event.Vis e -> Event.pp ppf e

let pp_trace ppf tr =
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_label)
    tr

let trace_to_string tr = Format.asprintf "%a" pp_trace tr
