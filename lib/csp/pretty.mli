(** Blackboard-notation rendering of process terms, matching the paper's
    Section IV-A2 syntax (e.g. [a → P □ Q], [P ⊓ Q], [P ∥ Q], [P ||| Q],
    [P \ A]); useful for documentation and counterexample reports.

    The machine-readable CSPm rendering lives in [Cspm.Print]. *)

val pp_proc : Format.formatter -> Proc.t -> unit
val proc_to_string : Proc.t -> string

val pp_trace : Format.formatter -> Event.label list -> unit
(** Angle-bracket trace notation: [⟨reqSw, rptSw, ✓⟩]. *)

val trace_to_string : Event.label list -> string
