(** Refinement checking, FDR-style.

    [check ~spec ~impl] decides [spec ⊑ impl] in the traces or
    stable-failures model by (1) compiling and normalizing the
    specification, then (2) exploring the product of the implementation's
    states (generated on the fly) with the normal-form nodes, breadth-first,
    so a reported counterexample has minimal length.

    Every check is a thin configuration of the shared engine in {!Search};
    this module re-exports the engine's verdict types so existing callers
    see one vocabulary.

    Also provides deadlock and divergence checking of single processes. *)

type violation = Search.violation =
  | Trace_violation of Event.label
      (** the implementation performed this label where the specification
          forbids it *)
  | Refusal_violation of {
      offered : Event.label list;
          (** what the stable implementation state offers *)
      acceptances : Event.label list list;
          (** the specification's minimal acceptance sets at that point *)
    }
  | Deadlock
  | Divergence

type counterexample = Search.counterexample = {
  trace : Event.label list;
      (** visible labels (and possibly a final [Tick]) from the initial
          state to the violation; for trace violations the offending label
          is included as the last element *)
  violation : violation;
  impl_state : Proc.t;  (** the implementation term at the violation *)
}

type stats = Search.stats = {
  impl_states : int;  (** distinct implementation states visited *)
  spec_nodes : int;  (** normal-form nodes of the specification *)
  pairs : int;  (** product pairs visited *)
  wall_s : float;  (** wall-clock time spent in the search *)
  states_per_sec : float;  (** search throughput *)
  peak_frontier : int;  (** largest unexplored frontier at any point *)
  workers : int;  (** domains used by the search (1 = sequential) *)
  par_speedup : float;  (** estimated speedup over one worker *)
  reductions : (string * int * int) list;
      (** per reduction pass run on the implementation graph before the
          search: [(pass name, states before, states after)], in
          application order; [[]] on the raw path *)
}

type budget_kind = Search.budget_kind =
  | Deadline  (** the wall-clock deadline passed *)
  | States  (** an [Lts] compilation hit its state budget *)
  | Pairs  (** the product exploration hit its pair budget *)
  | Interrupt  (** the cancellation token tripped (signal, drain, …) *)
  | Memory  (** the heap watermark was crossed before the OOM killer *)

type resume_hint = Search.resume_hint = {
  frontier : int;
      (** discovered-but-unexplored states or pairs at the point of
          exhaustion — how much work was left in the queue *)
  deepest : Event.label list;
      (** visible trace to the most recently explored state; under BFS this
          is a deepest explored path, a natural place to resume or to
          narrow the model *)
  exhausted : budget_kind;
  checkpoint : Search.checkpoint option;
      (** resumable snapshot of the interrupted product search — feed it
          to {!resume}; [None] when the exhaustion happened outside the
          product engine (an [Lts] compilation budget) *)
}

type result = Search.result =
  | Holds of stats
  | Fails of counterexample
  | Inconclusive of stats * resume_hint
      (** a budget ran out before a verdict: the property neither holds nor
          fails on the explored prefix; [stats] counts what was explored *)

type model =
  | Traces
  | Failures
  | Failures_divergences
      (** FDR's namesake FD model: failures refinement plus the condition
          that the implementation may only diverge where the specification
          does (below a divergent specification point, anything goes) *)

val check :
  ?config:Check_config.t ->
  ?model:model ->
  ?max_states:int ->
  ?deadline:float ->
  Defs.t ->
  spec:Proc.t ->
  impl:Proc.t ->
  result
(** Default model is {!Traces}. All budgets, the interner, the worker
    pool, and the observability handle come from [config] (default
    {!Check_config.default}): [config.max_states] bounds each [Lts]
    compilation, [config.max_pairs] the product exploration (defaulting to
    [max_states]), [config.deadline] is a wall-clock budget in seconds
    from the start of the call. Exhausting any budget returns
    {!Inconclusive} rather than raising. At least one state or pair is
    always explored before the deadline is consulted, so an
    {!Inconclusive} result always carries non-zero stats.

    [config.interner] is ignored by {!Failures_divergences}, which
    precompiles both sides. [config.workers] runs the product search on a
    pool of that many OCaml 5 domains; verdicts, counterexample traces,
    and state/pair counts are byte-identical to a sequential run — as
    they are under any [config.obs] sink or [config.progress] callback.

    [max_states] and [deadline] are conveniences for the two most common
    one-off overrides; when given they take precedence over the record's
    fields. The other checks below take only [?config].

    [config.cancel] and [config.memory_limit_mb] degrade a running search
    gracefully: once the token trips (or the heap watermark is crossed)
    the product search returns {!Inconclusive} with [exhausted =
    Interrupt] (respectively [Memory]) and a {!Search.checkpoint} in the
    hint instead of dying.

    [config.reductions] selects the staged reduction pipeline (see
    {!Reduce}): when any pass applies to the model, the implementation is
    compiled through the staged combinator tree, reduced, and the product
    is searched over the reduced graph (with ample-set POR applied during
    the search when enabled). Verdicts are preserved by construction, and
    counterexamples are re-derived by the raw engine, so results are
    byte-identical to [with_reductions []] — [stats.reductions] and the
    wall clock are the only observable differences. If the staged compile
    runs out of budget the check falls back to the raw engine (which can
    still find an early counterexample without the full graph). The
    determinism check and the graph-based freedom checks always run
    raw. *)

val resume :
  ?config:Check_config.t ->
  ?model:model ->
  checkpoint:Search.checkpoint ->
  Defs.t ->
  spec:Proc.t ->
  impl:Proc.t ->
  result
(** Continue an interrupted {!check} from its checkpoint (the
    [hint.checkpoint] of the {!Inconclusive} result). The model, process
    terms, [config.max_states], [config.interner], and [config.max_pairs]
    must match the interrupted run — the engine validates the replayed
    prefix against the checkpoint's digests and raises
    {!Search.Resume_mismatch} on disagreement (a larger [max_pairs] is
    legal and is the way to get past a [Pairs] exhaustion). A
    [config.deadline] grants that many seconds beyond the recorded
    position; without one the checkpoint's own unconsumed budget applies
    ([None] = unbounded). The final verdict is byte-identical to an
    uninterrupted run.

    [config.reductions] must also match the interrupted run: checkpoints
    record the reduction fingerprint of the search they interrupted, and
    a resume whose effective pipeline differs raises
    {!Search.Resume_mismatch} immediately (the visit order of a reduced
    search means nothing to an unreduced one, and vice versa). *)

val resume_deterministic :
  ?config:Check_config.t ->
  checkpoint:Search.checkpoint ->
  Defs.t ->
  Proc.t ->
  result
(** {!resume} for an interrupted {!deterministic} check. The graph-based
    {!deadlock_free}/{!divergence_free} checks produce no checkpoint (an
    interrupted compile just re-runs), so they need no resume entry. *)

val traces_refines :
  ?config:Check_config.t -> Defs.t -> spec:Proc.t -> impl:Proc.t -> result

val failures_refines :
  ?config:Check_config.t -> Defs.t -> spec:Proc.t -> impl:Proc.t -> result

val fd_refines :
  ?config:Check_config.t -> Defs.t -> spec:Proc.t -> impl:Proc.t -> result
(** Failures-divergences refinement. Unlike the other checks, both sides
    are fully compiled first (implementation divergence detection needs
    the whole tau graph), so early counterexample exit does not avoid the
    full state-space cost. *)

val deadlock_free : ?config:Check_config.t -> Defs.t -> Proc.t -> result

val divergence_free : ?config:Check_config.t -> Defs.t -> Proc.t -> result
(** For {!deadlock_free} and {!divergence_free}, [config.workers] is
    ignored: these checks are a sequential graph compilation plus an
    offender scan, not a product search, and their stats report
    [workers = 1] accordingly. *)

val deterministic : ?config:Check_config.t -> Defs.t -> Proc.t -> result
(** FDR's determinism check in the stable-failures model: [P] is
    deterministic iff [normalise(P) ⊑F P], which this implements as a
    failures self-refinement (the specification side is normalized
    internally). A counterexample exhibits a trace after which [P] can
    both accept and refuse the same event. *)

val holds : result -> bool
(** [true] only for {!Holds}; {!Inconclusive} is not a pass. *)

val inconclusive : result -> bool

val pp_violation : Format.formatter -> violation -> unit
val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_resume_hint : Format.formatter -> resume_hint -> unit
val pp_stats : Format.formatter -> stats -> unit
val pp_result : Format.formatter -> result -> unit
