type t =
  | Int_range of int * int
  | Bool
  | Named of string
  | Tuple of t list

type def =
  | Alias of t
  | Variants of (string * t list) list

type lookup = string -> def option

exception Domain_too_large of string
exception Unknown_type of string

let rec equal t1 t2 =
  match t1, t2 with
  | Int_range (a, b), Int_range (c, d) -> a = c && b = d
  | Bool, Bool -> true
  | Named n, Named m -> String.equal n m
  | Tuple l1, Tuple l2 ->
    List.length l1 = List.length l2 && List.for_all2 equal l1 l2
  | (Int_range _ | Bool | Named _ | Tuple _), _ -> false

let rec pp ppf = function
  | Int_range (lo, hi) -> Format.fprintf ppf "{%d..%d}" lo hi
  | Bool -> Format.pp_print_string ppf "Bool"
  | Named n -> Format.pp_print_string ppf n
  | Tuple tys ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      tys

let to_string ty = Format.asprintf "%a" pp ty

(* Cartesian product of domains, in lexicographic order. *)
let product (domains : Value.t list list) : Value.t list list =
  List.fold_right
    (fun dom acc -> List.concat_map (fun v -> List.map (fun t -> v :: t) acc) dom)
    domains [ [] ]

let domain ?(limit = 100_000) lookup ty =
  (* [seen] guards against recursive datatypes, which have no finite domain. *)
  let budget = ref limit in
  let spend n =
    budget := !budget - n;
    if !budget < 0 then raise (Domain_too_large (to_string ty))
  in
  let rec go seen ty =
    match ty with
    | Bool -> [ Value.Bool false; Value.Bool true ]
    | Int_range (lo, hi) ->
      if lo > hi then []
      else begin
        spend (hi - lo + 1);
        List.init (hi - lo + 1) (fun i -> Value.Int (lo + i))
      end
    | Tuple tys ->
      let doms = List.map (go seen) tys in
      let prod = product doms in
      spend (List.length prod);
      List.map (fun vs -> Value.Tuple vs) prod
    | Named n ->
      if List.mem n seen then
        raise (Unknown_type (n ^ " (recursive datatype has no finite domain)"));
      (match lookup n with
       | None -> raise (Unknown_type n)
       | Some (Alias ty') -> go (n :: seen) ty'
       | Some (Variants ctors) ->
         let seen = n :: seen in
         List.concat_map
           (fun (c, arg_tys) ->
             match arg_tys with
             | [] -> [ Value.Ctor (c, []) ]
             | _ ->
               let doms = List.map (go seen) arg_tys in
               let prod = product doms in
               spend (List.length prod);
               List.map (fun args -> Value.Ctor (c, args)) prod)
           ctors)
  in
  let values = go [] ty in
  List.sort_uniq Value.compare values

let domain_size lookup ty = List.length (domain lookup ty)

let contains lookup ty v =
  let rec go seen ty v =
    match ty, v with
    | Bool, Value.Bool _ -> true
    | Int_range (lo, hi), Value.Int n -> lo <= n && n <= hi
    | Tuple tys, Value.Tuple vs ->
      List.length tys = List.length vs && List.for_all2 (go seen) tys vs
    | Named n, _ ->
      if List.mem n seen then false
      else begin
        match lookup n with
        | None -> raise (Unknown_type n)
        | Some (Alias ty') -> go (n :: seen) ty' v
        | Some (Variants ctors) ->
          (match v with
           | Value.Ctor (c, args) ->
             (match List.assoc_opt c ctors with
              | None -> false
              | Some arg_tys ->
                List.length arg_tys = List.length args
                && List.for_all2 (go (n :: seen)) arg_tys args)
           | Value.Int _ | Value.Bool _ | Value.Tuple _ -> false)
      end
    | (Bool | Int_range _ | Tuple _), _ -> false
  in
  go [] ty v
