type comm_item =
  | Out of Expr.t
  | In of string * Expr.t option

type t =
  | Stop
  | Skip
  | Omega
  | Prefix of string * comm_item list * t
  | Ext of t * t
  | Int of t * t
  | Seq of t * t
  | Par of t * Eventset.t * t
  | APar of t * Eventset.t * Eventset.t * t
  | Inter of t * t
  | Interrupt of t * t
  | Timeout of t * t
  | Hide of t * Eventset.t
  | Rename of t * (string * string) list
  | If of Expr.t * t * t
  | Guard of Expr.t * t
  | Call of string * Expr.t list
  | Ext_over of string * Expr.t * t
  | Int_over of string * Expr.t * t
  | Inter_over of string * Expr.t * t
  | Run of Eventset.t
  | Chaos of Eventset.t

let equal p1 p2 = Stdlib.compare p1 p2 = 0
let compare = Stdlib.compare
let hash (p : t) = Hashtbl.hash p

(* Smart constructors collapsing stacked identical wrappers: recursion
   through a hiding or renaming context (P = (a -> P) \ A) would otherwise
   build unboundedly nested terms and an infinite state space. Both
   rewrites are sound: hiding and renaming are idempotent for the same
   set/mapping. *)
let hide p set =
  match p with
  | Hide (q, set') when Eventset.equal set set' -> Hide (q, set)
  | _ -> Hide (p, set)

let rename p mapping =
  match p with
  | Rename (q, mapping') when mapping = mapping' -> Rename (q, mapping)
  | _ -> Rename (p, mapping)

let prefix c args p = Prefix (c, List.map (fun e -> Out e) args, p)
let send c values p = prefix c (List.map (fun v -> Expr.Lit v) values) p
let recv c xs p = Prefix (c, List.map (fun x -> In (x, None)) xs, p)

let free_vars proc =
  let add bound x acc = if List.mem x bound then acc else x :: acc in
  let add_expr bound e acc =
    List.fold_left (fun acc x -> add bound x acc) acc (Expr.free_vars e)
  in
  let rec go bound acc = function
    | Stop | Skip | Omega | Run _ | Chaos _ -> acc
    | Prefix (_, items, p) ->
      let bound', acc =
        List.fold_left
          (fun (bound, acc) item ->
            match item with
            | Out e -> bound, add_expr bound e acc
            | In (x, restr) ->
              let acc =
                match restr with
                | None -> acc
                | Some e -> add_expr bound e acc
              in
              x :: bound, acc)
          (bound, acc) items
      in
      go bound' acc p
    | Ext (p, q) | Int (p, q) | Seq (p, q) | Inter (p, q)
    | Interrupt (p, q) | Timeout (p, q) ->
      go bound (go bound acc p) q
    | Par (p, _, q) | APar (p, _, _, q) -> go bound (go bound acc p) q
    | Hide (p, _) | Rename (p, _) -> go bound acc p
    | If (c, p, q) -> go bound (go bound (add_expr bound c acc) p) q
    | Guard (c, p) -> go bound (add_expr bound c acc) p
    | Call (_, args) ->
      List.fold_left (fun acc e -> add_expr bound e acc) acc args
    | Ext_over (x, s, p) | Int_over (x, s, p) | Inter_over (x, s, p) ->
      go (x :: bound) (add_expr bound s acc) p
  in
  List.sort_uniq String.compare (go [] [] proc)

let subst resolve proc =
  let shadow resolve x y = if String.equal y x then None else resolve y in
  let rec go resolve = function
    | (Stop | Skip | Omega | Run _ | Chaos _) as p -> p
    | Prefix (c, items, p) ->
      let resolve', items =
        List.fold_left
          (fun (resolve, items) item ->
            match item with
            | Out e -> resolve, Out (Expr.subst resolve e) :: items
            | In (x, restr) ->
              let restr = Option.map (Expr.subst resolve) restr in
              shadow resolve x, In (x, restr) :: items)
          (resolve, []) items
      in
      Prefix (c, List.rev items, go resolve' p)
    | Ext (p, q) -> Ext (go resolve p, go resolve q)
    | Int (p, q) -> Int (go resolve p, go resolve q)
    | Seq (p, q) -> Seq (go resolve p, go resolve q)
    | Interrupt (p, q) -> Interrupt (go resolve p, go resolve q)
    | Timeout (p, q) -> Timeout (go resolve p, go resolve q)
    | Par (p, a, q) -> Par (go resolve p, a, go resolve q)
    | APar (p, a, b, q) -> APar (go resolve p, a, b, go resolve q)
    | Inter (p, q) -> Inter (go resolve p, go resolve q)
    | Hide (p, a) -> Hide (go resolve p, a)
    | Rename (p, m) -> Rename (go resolve p, m)
    | If (c, p, q) -> If (Expr.subst resolve c, go resolve p, go resolve q)
    | Guard (c, p) -> Guard (Expr.subst resolve c, go resolve p)
    | Call (f, args) -> Call (f, List.map (Expr.subst resolve) args)
    | Ext_over (x, s, p) ->
      Ext_over (x, Expr.subst resolve s, go (shadow resolve x) p)
    | Int_over (x, s, p) ->
      Int_over (x, Expr.subst resolve s, go (shadow resolve x) p)
    | Inter_over (x, s, p) ->
      Inter_over (x, Expr.subst resolve s, go (shadow resolve x) p)
  in
  go resolve proc

let const_fold ?tys fenv proc =
  (* [bound] tracks in-scope binder variables; an expression folds to a
     literal only when none of its free variables are bound binders (after
     substitution, those are the only free variables left). *)
  let foldable bound e =
    not (List.exists (fun x -> List.mem x bound) (Expr.free_vars e))
  in
  let fold_expr bound e =
    match e with
    | Expr.Lit _ -> e
    | _ ->
      if foldable bound e then Expr.Lit (Expr.eval ?tys fenv Expr.empty_env e)
      else e
  in
  let rec go bound = function
    | (Stop | Skip | Omega | Run _ | Chaos _) as p -> p
    | Prefix (c, items, p) ->
      let bound', items =
        List.fold_left
          (fun (bound, items) item ->
            match item with
            | Out e -> bound, Out (fold_expr bound e) :: items
            | In (x, restr) ->
              (* restriction sets are set-valued: they are evaluated by the
                 semantics when the prefix fires, never folded to a scalar *)
              x :: bound, In (x, restr) :: items)
          (bound, []) items
      in
      Prefix (c, List.rev items, go bound' p)
    | Ext (p, q) -> Ext (go bound p, go bound q)
    | Int (p, q) -> Int (go bound p, go bound q)
    | Seq (p, q) -> Seq (go bound p, go bound q)
    | Interrupt (p, q) -> Interrupt (go bound p, go bound q)
    | Timeout (p, q) -> Timeout (go bound p, go bound q)
    | Par (p, a, q) -> Par (go bound p, a, go bound q)
    | APar (p, a, b, q) -> APar (go bound p, a, b, go bound q)
    | Inter (p, q) -> Inter (go bound p, go bound q)
    | Hide (p, a) -> hide (go bound p) a
    | Rename (p, m) -> rename (go bound p) m
    | If (c, p, q) ->
      if foldable bound c then
        if Expr.eval_bool ?tys fenv Expr.empty_env c then go bound p
        else go bound q
      else If (c, go bound p, go bound q)
    | Guard (c, p) ->
      if foldable bound c then
        if Expr.eval_bool ?tys fenv Expr.empty_env c then go bound p else Stop
      else Guard (c, go bound p)
    | Call (f, args) -> Call (f, List.map (fold_expr bound) args)
    | Ext_over (x, s, p) ->
      expand_over bound x s p ~combine:(fun a b -> Ext (a, b)) ~unit_:Stop
        ~rebuild:(fun s p -> Ext_over (x, s, p))
    | Int_over (x, s, p) ->
      expand_over bound x s p ~combine:(fun a b -> Int (a, b)) ~unit_:Stop
        ~rebuild:(fun s p -> Int_over (x, s, p))
    | Inter_over (x, s, p) ->
      expand_over bound x s p ~combine:(fun a b -> Inter (a, b)) ~unit_:Skip
        ~rebuild:(fun s p -> Inter_over (x, s, p))
  and expand_over bound x s p ~combine ~unit_ ~rebuild =
    if foldable bound s then begin
      let values = Expr.eval_set ?tys fenv Expr.empty_env s in
      match values with
      | [] -> unit_
      | v0 :: rest ->
        let instance v =
          let resolve y = if String.equal y x then Some v else None in
          go bound (subst resolve p)
        in
        List.fold_left (fun acc v -> combine acc (instance v)) (instance v0) rest
    end
    else rebuild s (go (x :: bound) p)
  in
  go [] proc

let size proc =
  let rec go acc = function
    | Stop | Skip | Omega | Run _ | Chaos _ -> acc + 1
    | Prefix (_, _, p) | Hide (p, _) | Rename (p, _) | Guard (_, p)
    | Ext_over (_, _, p) | Int_over (_, _, p) | Inter_over (_, _, p) ->
      go (acc + 1) p
    | Ext (p, q) | Int (p, q) | Seq (p, q) | Inter (p, q)
    | Interrupt (p, q) | Timeout (p, q)
    | Par (p, _, q) | APar (p, _, _, q) | If (_, p, q) ->
      go (go (acc + 1) p) q
    | Call _ -> acc + 1
  in
  go 0 proc

let rec pp ppf = function
  | Stop -> Format.pp_print_string ppf "STOP"
  | Skip -> Format.pp_print_string ppf "SKIP"
  | Omega -> Format.pp_print_string ppf "OMEGA"
  | Prefix (c, items, p) ->
    Format.pp_print_string ppf c;
    List.iter
      (fun item ->
        match item with
        | Out e -> Format.fprintf ppf "!%a" Expr.pp e
        | In (x, None) -> Format.fprintf ppf "?%s" x
        | In (x, Some s) -> Format.fprintf ppf "?%s:%a" x Expr.pp s)
      items;
    Format.fprintf ppf " -> %a" pp_atom p
  | Ext (p, q) -> Format.fprintf ppf "%a [] %a" pp_atom p pp_atom q
  | Int (p, q) -> Format.fprintf ppf "%a |~| %a" pp_atom p pp_atom q
  | Seq (p, q) -> Format.fprintf ppf "%a; %a" pp_atom p pp_atom q
  | Par (p, a, q) ->
    Format.fprintf ppf "%a [|%a|] %a" pp_atom p Eventset.pp a pp_atom q
  | APar (p, a, b, q) ->
    Format.fprintf ppf "%a [%a||%a] %a" pp_atom p Eventset.pp a Eventset.pp b
      pp_atom q
  | Inter (p, q) -> Format.fprintf ppf "%a ||| %a" pp_atom p pp_atom q
  | Interrupt (p, q) -> Format.fprintf ppf "%a /\\ %a" pp_atom p pp_atom q
  | Timeout (p, q) -> Format.fprintf ppf "%a [> %a" pp_atom p pp_atom q
  | Hide (p, a) -> Format.fprintf ppf "%a \\ %a" pp_atom p Eventset.pp a
  | Rename (p, m) ->
    Format.fprintf ppf "%a[[%a]]" pp_atom p
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (a, b) -> Format.fprintf ppf "%s <- %s" a b))
      m
  | If (c, p, q) ->
    Format.fprintf ppf "if %a then %a else %a" Expr.pp c pp_atom p pp_atom q
  | Guard (c, p) -> Format.fprintf ppf "%a & %a" Expr.pp c pp_atom p
  | Call (f, []) -> Format.pp_print_string ppf f
  | Call (f, args) -> Format.fprintf ppf "%s(%a)" f Expr.pp_list args
  | Ext_over (x, s, p) ->
    Format.fprintf ppf "[] %s : %a @@ %a" x Expr.pp s pp_atom p
  | Int_over (x, s, p) ->
    Format.fprintf ppf "|~| %s : %a @@ %a" x Expr.pp s pp_atom p
  | Inter_over (x, s, p) ->
    Format.fprintf ppf "||| %s : %a @@ %a" x Expr.pp s pp_atom p
  | Run a -> Format.fprintf ppf "RUN(%a)" Eventset.pp a
  | Chaos a -> Format.fprintf ppf "CHAOS(%a)" Eventset.pp a

and pp_atom ppf p =
  match p with
  | Stop | Skip | Omega | Call _ | Run _ | Chaos _ -> pp ppf p
  | _ -> Format.fprintf ppf "(%a)" pp p

let to_string p = Format.asprintf "%a" pp p
