type comm_item =
  | Out of Expr.t
  | In of string * Expr.t option

type t = {
  id : int;
  hkey : int;
  node : node;
}

and node =
  | Stop
  | Skip
  | Omega
  | Prefix of string * comm_item list * t
  | Ext of t * t
  | Int of t * t
  | Seq of t * t
  | Par of t * Eventset.t * t
  | APar of t * Eventset.t * Eventset.t * t
  | Inter of t * t
  | Interrupt of t * t
  | Timeout of t * t
  | Hide of t * Eventset.t
  | Rename of t * (string * string) list
  | If of Expr.t * t * t
  | Guard of Expr.t * t
  | Call of string * Expr.t list
  | Ext_over of string * Expr.t * t
  | Int_over of string * Expr.t * t
  | Inter_over of string * Expr.t * t
  | Run of Eventset.t
  | Chaos of Eventset.t

let view p = p.node
let id p = p.id
let equal (p : t) (q : t) = p == q
let hash p = p.hkey

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Shallow equality: child terms by physical identity (they are already
   interned), other payloads structurally. This is all the intern table
   needs — deep equality follows inductively. *)
(* Monomorphic payload equality: these run on every intern-table probe,
   where the polymorphic [=]'s C-level walk over literal-heavy payloads
   is the difference between O(1) and O(term size) per construction. *)
let equal_comm_items =
  List.equal (fun i1 i2 ->
      match i1, i2 with
      | Out e1, Out e2 -> Expr.equal e1 e2
      | In (x1, r1), In (x2, r2) ->
        String.equal x1 x2 && Option.equal Expr.equal r1 r2
      | (Out _ | In _), _ -> false)

let equal_mapping =
  List.equal (fun (a1, b1) (a2, b2) -> String.equal a1 a2 && String.equal b1 b2)

let shallow_equal n1 n2 =
  match n1, n2 with
  | Stop, Stop | Skip, Skip | Omega, Omega -> true
  | Prefix (c1, i1, p1), Prefix (c2, i2, p2) ->
    String.equal c1 c2 && p1 == p2 && equal_comm_items i1 i2
  | Ext (a1, b1), Ext (a2, b2)
  | Int (a1, b1), Int (a2, b2)
  | Seq (a1, b1), Seq (a2, b2)
  | Inter (a1, b1), Inter (a2, b2)
  | Interrupt (a1, b1), Interrupt (a2, b2)
  | Timeout (a1, b1), Timeout (a2, b2) ->
    a1 == a2 && b1 == b2
  | Par (a1, s1, b1), Par (a2, s2, b2) ->
    a1 == a2 && b1 == b2 && Eventset.equal s1 s2
  | APar (a1, sa1, sb1, b1), APar (a2, sa2, sb2, b2) ->
    a1 == a2 && b1 == b2 && Eventset.equal sa1 sa2 && Eventset.equal sb1 sb2
  | Hide (a1, s1), Hide (a2, s2) -> a1 == a2 && Eventset.equal s1 s2
  | Rename (a1, m1), Rename (a2, m2) -> a1 == a2 && equal_mapping m1 m2
  | If (c1, a1, b1), If (c2, a2, b2) ->
    a1 == a2 && b1 == b2 && Expr.equal c1 c2
  | Guard (c1, a1), Guard (c2, a2) -> a1 == a2 && Expr.equal c1 c2
  | Call (f1, args1), Call (f2, args2) ->
    String.equal f1 f2 && List.equal Expr.equal args1 args2
  | Ext_over (x1, s1, a1), Ext_over (x2, s2, a2)
  | Int_over (x1, s1, a1), Int_over (x2, s2, a2)
  | Inter_over (x1, s1, a1), Inter_over (x2, s2, a2) ->
    String.equal x1 x2 && a1 == a2 && Expr.equal s1 s2
  | Run s1, Run s2 | Chaos s1, Chaos s2 -> Eventset.equal s1 s2
  | _, _ -> false

let comb h x = ((h lsl 5) + h + x) land max_int

let hash_node n =
  match n with
  | Stop -> 3
  | Skip -> 5
  | Omega -> 7
  | Prefix (c, items, p) ->
    comb (comb (comb 11 (Hashtbl.hash c)) (Hashtbl.hash items)) p.hkey
  | Ext (a, b) -> comb (comb 13 a.hkey) b.hkey
  | Int (a, b) -> comb (comb 17 a.hkey) b.hkey
  | Seq (a, b) -> comb (comb 19 a.hkey) b.hkey
  | Par (a, s, b) -> comb (comb (comb 23 a.hkey) (Hashtbl.hash s)) b.hkey
  | APar (a, sa, sb, b) ->
    comb
      (comb (comb (comb 29 a.hkey) (Hashtbl.hash sa)) (Hashtbl.hash sb))
      b.hkey
  | Inter (a, b) -> comb (comb 31 a.hkey) b.hkey
  | Interrupt (a, b) -> comb (comb 37 a.hkey) b.hkey
  | Timeout (a, b) -> comb (comb 41 a.hkey) b.hkey
  | Hide (a, s) -> comb (comb 43 a.hkey) (Hashtbl.hash s)
  | Rename (a, m) -> comb (comb 47 a.hkey) (Hashtbl.hash m)
  | If (c, a, b) -> comb (comb (comb 53 (Hashtbl.hash c)) a.hkey) b.hkey
  | Guard (c, a) -> comb (comb 59 (Hashtbl.hash c)) a.hkey
  | Call (f, args) -> comb (comb 61 (Hashtbl.hash f)) (Hashtbl.hash args)
  | Ext_over (x, s, a) ->
    comb (comb (comb 67 (Hashtbl.hash x)) (Hashtbl.hash s)) a.hkey
  | Int_over (x, s, a) ->
    comb (comb (comb 71 (Hashtbl.hash x)) (Hashtbl.hash s)) a.hkey
  | Inter_over (x, s, a) ->
    comb (comb (comb 73 (Hashtbl.hash x)) (Hashtbl.hash s)) a.hkey
  | Run s -> comb 79 (Hashtbl.hash s)
  | Chaos s -> comb 83 (Hashtbl.hash s)

module HC = Weak.Make (struct
  type nonrec t = t

  let equal a b = shallow_equal a.node b.node
  let hash a = a.hkey
end)

(* One global intern table, weak so the GC can reclaim dead terms. Ids are
   handed out only when a candidate is actually added. The table is shared
   by every domain (terms must stay physically unique process-wide for the
   O(1) equality to hold across the parallel search), so all access is
   serialized by a mutex; per-domain transition memo tables keep most
   parallel work off this path. *)
let hc_table = HC.create 4096
let hc_mutex = Mutex.create ()
let next_id = ref 0

let make node =
  let hkey = hash_node node in
  Mutex.lock hc_mutex;
  let cand = { id = !next_id; hkey; node } in
  let res = HC.merge hc_table cand in
  if res == cand then incr next_id;
  Mutex.unlock hc_mutex;
  res

let interned () =
  Mutex.lock hc_mutex;
  let n = HC.count hc_table in
  Mutex.unlock hc_mutex;
  n

(* ------------------------------------------------------------------ *)
(* Deterministic structural order (independent of interning order)     *)
(* ------------------------------------------------------------------ *)

let tag_of = function
  | Stop -> 0
  | Skip -> 1
  | Omega -> 2
  | Prefix _ -> 3
  | Ext _ -> 4
  | Int _ -> 5
  | Seq _ -> 6
  | Par _ -> 7
  | APar _ -> 8
  | Inter _ -> 9
  | Interrupt _ -> 10
  | Timeout _ -> 11
  | Hide _ -> 12
  | Rename _ -> 13
  | If _ -> 14
  | Guard _ -> 15
  | Call _ -> 16
  | Ext_over _ -> 17
  | Int_over _ -> 18
  | Inter_over _ -> 19
  | Run _ -> 20
  | Chaos _ -> 21

let rec compare p q =
  if p == q then 0
  else
    let n1 = p.node and n2 = q.node in
    let c = Int.compare (tag_of n1) (tag_of n2) in
    if c <> 0 then c
    else
      match n1, n2 with
      | Stop, Stop | Skip, Skip | Omega, Omega -> 0
      | Prefix (c1, i1, p1), Prefix (c2, i2, p2) ->
        chain (String.compare c1 c2) (fun () ->
            chain (Stdlib.compare i1 i2) (fun () -> compare p1 p2))
      | Ext (a1, b1), Ext (a2, b2)
      | Int (a1, b1), Int (a2, b2)
      | Seq (a1, b1), Seq (a2, b2)
      | Inter (a1, b1), Inter (a2, b2)
      | Interrupt (a1, b1), Interrupt (a2, b2)
      | Timeout (a1, b1), Timeout (a2, b2) ->
        chain (compare a1 a2) (fun () -> compare b1 b2)
      | Par (a1, s1, b1), Par (a2, s2, b2) ->
        chain (compare a1 a2) (fun () ->
            chain (Stdlib.compare s1 s2) (fun () -> compare b1 b2))
      | APar (a1, sa1, sb1, b1), APar (a2, sa2, sb2, b2) ->
        chain (compare a1 a2) (fun () ->
            chain (Stdlib.compare sa1 sa2) (fun () ->
                chain (Stdlib.compare sb1 sb2) (fun () -> compare b1 b2)))
      | Hide (a1, s1), Hide (a2, s2) ->
        chain (compare a1 a2) (fun () -> Stdlib.compare s1 s2)
      | Rename (a1, m1), Rename (a2, m2) ->
        chain (compare a1 a2) (fun () -> Stdlib.compare m1 m2)
      | If (c1, a1, b1), If (c2, a2, b2) ->
        chain (Expr.compare c1 c2) (fun () ->
            chain (compare a1 a2) (fun () -> compare b1 b2))
      | Guard (c1, a1), Guard (c2, a2) ->
        chain (Expr.compare c1 c2) (fun () -> compare a1 a2)
      | Call (f1, args1), Call (f2, args2) ->
        chain (String.compare f1 f2) (fun () ->
            List.compare Expr.compare args1 args2)
      | Ext_over (x1, s1, a1), Ext_over (x2, s2, a2)
      | Int_over (x1, s1, a1), Int_over (x2, s2, a2)
      | Inter_over (x1, s1, a1), Inter_over (x2, s2, a2) ->
        chain (String.compare x1 x2) (fun () ->
            chain (Expr.compare s1 s2) (fun () -> compare a1 a2))
      | Run s1, Run s2 | Chaos s1, Chaos s2 -> Stdlib.compare s1 s2
      | _, _ ->
        (* tags already distinguished above *)
        invalid_arg "Proc.compare: constructor tags out of sync"

and chain c rest = if c <> 0 then c else rest ()

let structural_equal p q = compare p q = 0

let rec structural_hash p =
  let h =
    match p.node with
    | Stop | Skip | Omega | Run _ | Chaos _ -> 0
    | Prefix (_, _, q) | Hide (q, _) | Rename (q, _) | Guard (_, q)
    | Ext_over (_, _, q) | Int_over (_, _, q) | Inter_over (_, _, q) ->
      structural_hash q
    | Ext (a, b) | Int (a, b) | Seq (a, b) | Inter (a, b)
    | Interrupt (a, b) | Timeout (a, b)
    | Par (a, _, b) | APar (a, _, _, b) | If (_, a, b) ->
      comb (structural_hash a) (structural_hash b)
    | Call _ -> 0
  in
  (* fold in the node's own payload exactly as the interning hash does,
     minus child hkeys (already covered recursively above) *)
  comb (tag_of p.node)
    (comb h
       (match p.node with
        | Prefix (c, items, _) -> comb (Hashtbl.hash c) (Hashtbl.hash items)
        | Par (_, s, _) | Hide (_, s) | Run s | Chaos s -> Hashtbl.hash s
        | APar (_, sa, sb, _) -> comb (Hashtbl.hash sa) (Hashtbl.hash sb)
        | Rename (_, m) -> Hashtbl.hash m
        | If (c, _, _) | Guard (c, _) -> Hashtbl.hash c
        | Call (f, args) -> comb (Hashtbl.hash f) (Hashtbl.hash args)
        | Ext_over (x, s, _) | Int_over (x, s, _) | Inter_over (x, s, _) ->
          comb (Hashtbl.hash x) (Hashtbl.hash s)
        | Stop | Skip | Omega | Ext _ | Int _ | Seq _ | Inter _
        | Interrupt _ | Timeout _ ->
          tag_of p.node))

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let stop = make Stop
let skip = make Skip
let omega = make Omega
let prefix_items (c, items, p) = make (Prefix (c, items, p))
let ext (p, q) = make (Ext (p, q))
let intc (p, q) = make (Int (p, q))
let seq (p, q) = make (Seq (p, q))
let par (p, s, q) = make (Par (p, s, q))
let apar (p, sa, sb, q) = make (APar (p, sa, sb, q))
let inter (p, q) = make (Inter (p, q))
let interrupt (p, q) = make (Interrupt (p, q))
let timeout (p, q) = make (Timeout (p, q))

let hide (p, set) =
  match p.node with
  | Hide (_, set') when Eventset.equal set set' -> p
  | _ -> make (Hide (p, set))

let rename (p, mapping) =
  match p.node with
  | Rename (_, mapping') when mapping = mapping' -> p
  | _ -> make (Rename (p, mapping))

let ite (c, p, q) = make (If (c, p, q))
let guard (c, p) = make (Guard (c, p))
let call (f, args) = make (Call (f, args))
let ext_over (x, s, p) = make (Ext_over (x, s, p))
let int_over (x, s, p) = make (Int_over (x, s, p))
let inter_over (x, s, p) = make (Inter_over (x, s, p))
let run set = make (Run set)
let chaos set = make (Chaos set)

let prefix c args p = prefix_items (c, List.map (fun e -> Out e) args, p)
let send c values p = prefix c (List.map (fun v -> Expr.Lit v) values) p
let recv c xs p = prefix_items (c, List.map (fun x -> In (x, None)) xs, p)

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let free_vars proc =
  let add bound x acc = if List.mem x bound then acc else x :: acc in
  let add_expr bound e acc =
    List.fold_left (fun acc x -> add bound x acc) acc (Expr.free_vars e)
  in
  let rec go bound acc p =
    match p.node with
    | Stop | Skip | Omega | Run _ | Chaos _ -> acc
    | Prefix (_, items, p) ->
      let bound', acc =
        List.fold_left
          (fun (bound, acc) item ->
            match item with
            | Out e -> bound, add_expr bound e acc
            | In (x, restr) ->
              let acc =
                match restr with
                | None -> acc
                | Some e -> add_expr bound e acc
              in
              x :: bound, acc)
          (bound, acc) items
      in
      go bound' acc p
    | Ext (p, q) | Int (p, q) | Seq (p, q) | Inter (p, q)
    | Interrupt (p, q) | Timeout (p, q) ->
      go bound (go bound acc p) q
    | Par (p, _, q) | APar (p, _, _, q) -> go bound (go bound acc p) q
    | Hide (p, _) | Rename (p, _) -> go bound acc p
    | If (c, p, q) -> go bound (go bound (add_expr bound c acc) p) q
    | Guard (c, p) -> go bound (add_expr bound c acc) p
    | Call (_, args) ->
      List.fold_left (fun acc e -> add_expr bound e acc) acc args
    | Ext_over (x, s, p) | Int_over (x, s, p) | Inter_over (x, s, p) ->
      go (x :: bound) (add_expr bound s acc) p
  in
  List.sort_uniq String.compare (go [] [] proc)

(* Rebuilds go through the smart constructors, so an unchanged subterm
   re-interns to itself and the physical-identity fast paths below are
   merely an optimization, not a correctness requirement. *)
let subst resolve proc =
  let shadow resolve x y = if String.equal y x then None else resolve y in
  let rec go resolve p =
    match p.node with
    | Stop | Skip | Omega | Run _ | Chaos _ -> p
    | Prefix (c, items, cont) ->
      let resolve', rev_items =
        List.fold_left
          (fun (resolve, items) item ->
            match item with
            | Out e -> resolve, Out (Expr.subst resolve e) :: items
            | In (x, restr) ->
              let restr = Option.map (Expr.subst resolve) restr in
              shadow resolve x, In (x, restr) :: items)
          (resolve, []) items
      in
      let items' = List.rev rev_items in
      let cont' = go resolve' cont in
      if cont' == cont && equal_comm_items items' items then p
      else prefix_items (c, items', cont')
    | Ext (a, b) -> binary p a b resolve ext
    | Int (a, b) -> binary p a b resolve intc
    | Seq (a, b) -> binary p a b resolve seq
    | Interrupt (a, b) -> binary p a b resolve interrupt
    | Timeout (a, b) -> binary p a b resolve timeout
    | Inter (a, b) -> binary p a b resolve inter
    | Par (a, s, b) ->
      let a' = go resolve a and b' = go resolve b in
      if a' == a && b' == b then p else par (a', s, b')
    | APar (a, sa, sb, b) ->
      let a' = go resolve a and b' = go resolve b in
      if a' == a && b' == b then p else apar (a', sa, sb, b')
    | Hide (a, s) ->
      let a' = go resolve a in
      if a' == a then p else hide (a', s)
    | Rename (a, m) ->
      let a' = go resolve a in
      if a' == a then p else rename (a', m)
    | If (c, a, b) ->
      let c' = Expr.subst resolve c in
      let a' = go resolve a and b' = go resolve b in
      if a' == a && b' == b && Expr.equal c' c then p else ite (c', a', b')
    | Guard (c, a) ->
      let c' = Expr.subst resolve c in
      let a' = go resolve a in
      if a' == a && Expr.equal c' c then p else guard (c', a')
    | Call (f, args) ->
      let args' = List.map (Expr.subst resolve) args in
      if List.equal Expr.equal args' args then p else call (f, args')
    | Ext_over (x, s, a) -> over p x s a resolve ext_over
    | Int_over (x, s, a) -> over p x s a resolve int_over
    | Inter_over (x, s, a) -> over p x s a resolve inter_over
  and binary p a b resolve mk =
    let a' = go resolve a and b' = go resolve b in
    if a' == a && b' == b then p else mk (a', b')
  and over p x s a resolve mk =
    let s' = Expr.subst resolve s in
    let a' = go (fun y -> if String.equal y x then None else resolve y) a in
    if a' == a && Expr.equal s' s then p else mk (x, s', a')
  in
  go resolve proc

(* Combine a non-empty branch list into a balanced tree, preserving
   left-to-right branch order. The replicated operators are associative,
   so the tree shape is free — and it is not free downstream: a left
   spine of N branches makes every traversal that rebuilds or memoizes
   per spine node (the operational semantics, the staged compiler)
   quadratic in N. Balancing caps the depth at O(log N). *)
let combine_balanced combine ps =
  let arr = Array.of_list ps in
  let rec go lo hi =
    if hi - lo = 1 then arr.(lo)
    else
      let mid = (lo + hi) / 2 in
      combine (go lo mid) (go mid hi)
  in
  go 0 (Array.length arr)

let ext_all = function
  | [] -> stop
  | ps -> combine_balanced (fun a b -> ext (a, b)) ps

let inter_all = function
  | [] -> skip
  | ps -> combine_balanced (fun a b -> inter (a, b)) ps

let const_fold ?tys fenv proc =
  (* [bound] tracks in-scope binder variables; an expression folds to a
     literal only when none of its free variables are bound binders (after
     substitution, those are the only free variables left). *)
  let foldable bound e =
    not (List.exists (fun x -> List.mem x bound) (Expr.free_vars e))
  in
  let fold_expr bound e =
    match e with
    | Expr.Lit _ -> e
    | _ ->
      if foldable bound e then Expr.Lit (Expr.eval ?tys fenv Expr.empty_env e)
      else e
  in
  let rec go bound p =
    match p.node with
    | Stop | Skip | Omega | Run _ | Chaos _ -> p
    | Prefix (c, items, cont) ->
      let bound', rev_items =
        List.fold_left
          (fun (bound, items) item ->
            match item with
            | Out e -> bound, Out (fold_expr bound e) :: items
            | In (x, restr) ->
              (* restriction sets are set-valued: they are evaluated by the
                 semantics when the prefix fires, never folded to a scalar *)
              x :: bound, In (x, restr) :: items)
          (bound, []) items
      in
      let items' = List.rev rev_items in
      let cont' = go bound' cont in
      if cont' == cont && equal_comm_items items' items then p
      else prefix_items (c, items', cont')
    | Ext (a, b) -> binary p a b bound ext
    | Int (a, b) -> binary p a b bound intc
    | Seq (a, b) -> binary p a b bound seq
    | Interrupt (a, b) -> binary p a b bound interrupt
    | Timeout (a, b) -> binary p a b bound timeout
    | Inter (a, b) -> binary p a b bound inter
    | Par (a, s, b) ->
      let a' = go bound a and b' = go bound b in
      if a' == a && b' == b then p else par (a', s, b')
    | APar (a, sa, sb, b) ->
      let a' = go bound a and b' = go bound b in
      if a' == a && b' == b then p else apar (a', sa, sb, b')
    | Hide (a, s) ->
      let a' = go bound a in
      if a' == a then p else hide (a', s)
    | Rename (a, m) ->
      let a' = go bound a in
      if a' == a then p else rename (a', m)
    | If (c, a, b) ->
      if foldable bound c then
        if Expr.eval_bool ?tys fenv Expr.empty_env c then go bound a
        else go bound b
      else
        let a' = go bound a and b' = go bound b in
        if a' == a && b' == b then p else ite (c, a', b')
    | Guard (c, a) ->
      if foldable bound c then
        if Expr.eval_bool ?tys fenv Expr.empty_env c then go bound a else stop
      else
        let a' = go bound a in
        if a' == a then p else guard (c, a')
    | Call (f, args) ->
      let args' = List.map (fold_expr bound) args in
      if List.equal Expr.equal args' args then p else call (f, args')
    | Ext_over (x, s, a) ->
      expand_over bound x s a ~combine:(fun l r -> ext (l, r)) ~unit_:stop
        ~rebuild:(fun s a -> ext_over (x, s, a))
    | Int_over (x, s, a) ->
      expand_over bound x s a ~combine:(fun l r -> intc (l, r)) ~unit_:stop
        ~rebuild:(fun s a -> int_over (x, s, a))
    | Inter_over (x, s, a) ->
      expand_over bound x s a ~combine:(fun l r -> inter (l, r)) ~unit_:skip
        ~rebuild:(fun s a -> inter_over (x, s, a))
  and binary p a b bound mk =
    let a' = go bound a and b' = go bound b in
    if a' == a && b' == b then p else mk (a', b')
  and expand_over bound x s p ~combine ~unit_ ~rebuild =
    if foldable bound s then begin
      let values = Expr.eval_set ?tys fenv Expr.empty_env s in
      match values with
      | [] -> unit_
      | v0 :: rest ->
        let instance v =
          let resolve y = if String.equal y x then Some v else None in
          go bound (subst resolve p)
        in
        combine_balanced combine (instance v0 :: List.map instance rest)
    end
    else rebuild s (go (x :: bound) p)
  in
  go [] proc

let size proc =
  let rec go acc p =
    match p.node with
    | Stop | Skip | Omega | Run _ | Chaos _ -> acc + 1
    | Prefix (_, _, p) | Hide (p, _) | Rename (p, _) | Guard (_, p)
    | Ext_over (_, _, p) | Int_over (_, _, p) | Inter_over (_, _, p) ->
      go (acc + 1) p
    | Ext (p, q) | Int (p, q) | Seq (p, q) | Inter (p, q)
    | Interrupt (p, q) | Timeout (p, q)
    | Par (p, _, q) | APar (p, _, _, q) | If (_, p, q) ->
      go (go (acc + 1) p) q
    | Call _ -> acc + 1
  in
  go 0 proc

let rec pp ppf p =
  match p.node with
  | Stop -> Format.pp_print_string ppf "STOP"
  | Skip -> Format.pp_print_string ppf "SKIP"
  | Omega -> Format.pp_print_string ppf "OMEGA"
  | Prefix (c, items, p) ->
    Format.pp_print_string ppf c;
    List.iter
      (fun item ->
        match item with
        | Out e -> Format.fprintf ppf "!%a" Expr.pp e
        | In (x, None) -> Format.fprintf ppf "?%s" x
        | In (x, Some s) -> Format.fprintf ppf "?%s:%a" x Expr.pp s)
      items;
    Format.fprintf ppf " -> %a" pp_atom p
  | Ext (p, q) -> Format.fprintf ppf "%a [] %a" pp_atom p pp_atom q
  | Int (p, q) -> Format.fprintf ppf "%a |~| %a" pp_atom p pp_atom q
  | Seq (p, q) -> Format.fprintf ppf "%a; %a" pp_atom p pp_atom q
  | Par (p, a, q) ->
    Format.fprintf ppf "%a [|%a|] %a" pp_atom p Eventset.pp a pp_atom q
  | APar (p, a, b, q) ->
    Format.fprintf ppf "%a [%a||%a] %a" pp_atom p Eventset.pp a Eventset.pp b
      pp_atom q
  | Inter (p, q) -> Format.fprintf ppf "%a ||| %a" pp_atom p pp_atom q
  | Interrupt (p, q) -> Format.fprintf ppf "%a /\\ %a" pp_atom p pp_atom q
  | Timeout (p, q) -> Format.fprintf ppf "%a [> %a" pp_atom p pp_atom q
  | Hide (p, a) -> Format.fprintf ppf "%a \\ %a" pp_atom p Eventset.pp a
  | Rename (p, m) ->
    Format.fprintf ppf "%a[[%a]]" pp_atom p
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (a, b) -> Format.fprintf ppf "%s <- %s" a b))
      m
  | If (c, p, q) ->
    Format.fprintf ppf "if %a then %a else %a" Expr.pp c pp_atom p pp_atom q
  | Guard (c, p) -> Format.fprintf ppf "%a & %a" Expr.pp c pp_atom p
  | Call (f, []) -> Format.pp_print_string ppf f
  | Call (f, args) -> Format.fprintf ppf "%s(%a)" f Expr.pp_list args
  | Ext_over (x, s, p) ->
    Format.fprintf ppf "[] %s : %a @@ %a" x Expr.pp s pp_atom p
  | Int_over (x, s, p) ->
    Format.fprintf ppf "|~| %s : %a @@ %a" x Expr.pp s pp_atom p
  | Inter_over (x, s, p) ->
    Format.fprintf ppf "||| %s : %a @@ %a" x Expr.pp s pp_atom p
  | Run a -> Format.fprintf ppf "RUN(%a)" Eventset.pp a
  | Chaos a -> Format.fprintf ppf "CHAOS(%a)" Eventset.pp a

and pp_atom ppf p =
  match p.node with
  | Stop | Skip | Omega | Call _ | Run _ | Chaos _ -> pp ppf p
  | _ -> Format.fprintf ppf "(%a)" pp p

let to_string p = Format.asprintf "%a" pp p
