(** CSP process terms.

    This is the syntax of Section IV-A2 of the paper (Stop, prefix, external
    choice, sequential composition, generalized parallel, interleaving)
    extended with the operators the CSPm front end and the CAPL translator
    need: internal choice, hiding, renaming, conditionals, boolean guards,
    replicated choices, alphabetized parallel, [RUN] and [CHAOS], and named
    recursive calls.

    Process states explored by {!Lts} are {e ground} terms: every expression
    outside the scope of an input binder has been folded to a literal by
    {!const_fold}, so structural equality and hashing identify states. *)

(** One field of a communication: output ([c!e] / [c.e]) or input ([c?x],
    optionally restricted to a set [c?x:S]). Input binders scope over the
    remaining fields and the continuation. *)
type comm_item =
  | Out of Expr.t
  | In of string * Expr.t option

type t =
  | Stop
  | Skip
  | Omega  (** the terminated process (after [tick]); not user-written *)
  | Prefix of string * comm_item list * t
  | Ext of t * t
  | Int of t * t
  | Seq of t * t
  | Par of t * Eventset.t * t  (** generalized parallel [P [|A|] Q] *)
  | APar of t * Eventset.t * Eventset.t * t
      (** alphabetized parallel [P [A||B] Q] *)
  | Inter of t * t  (** interleaving [P ||| Q] *)
  | Interrupt of t * t
      (** [P /\ Q]: [P] runs until a (visible) event of [Q] occurs, which
          takes over permanently *)
  | Timeout of t * t
      (** sliding choice [P [> Q]: [P] may be withdrawn silently in favour
          of [Q] at any point before its first visible event *)
  | Hide of t * Eventset.t
  | Rename of t * (string * string) list  (** channel-to-channel renaming *)
  | If of Expr.t * t * t
  | Guard of Expr.t * t  (** CSPm boolean guard [b & P] *)
  | Call of string * Expr.t list
  | Ext_over of string * Expr.t * t  (** replicated external choice *)
  | Int_over of string * Expr.t * t  (** replicated internal choice *)
  | Inter_over of string * Expr.t * t  (** replicated interleaving *)
  | Run of Eventset.t  (** [RUN(A)]: always offers every event of [A] *)
  | Chaos of Eventset.t
      (** [CHAOS(A)]: may nondeterministically accept or refuse [A] *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val hide : t -> Eventset.t -> t
(** [Hide] smart constructor that collapses [((p \ A) \ A)] to [p \ A]
    (hiding is idempotent); keeps recursion through a hiding context
    finite-state. Used by the operational semantics. *)

val rename : t -> (string * string) list -> t
(** Analogous collapsing constructor for [Rename]. *)

val prefix : string -> Expr.t list -> t -> t
(** [prefix c args p] is the all-output prefix [c.args -> p]. *)

val send : string -> Value.t list -> t -> t
(** Like {!prefix} with literal values. *)

val recv : string -> string list -> t -> t
(** [recv c xs p] is the all-input prefix [c?x1...?xn -> p]. *)

val free_vars : t -> string list
(** Variables not bound by an input binder or replicated-choice binder. *)

val subst : (string -> Value.t option) -> t -> t
(** Capture-avoiding substitution of values for free variables. *)

val const_fold : ?tys:Ty.lookup -> Expr.fenv -> t -> t
(** Normalize a term for use as an LTS state: evaluate every expression
    whose free variables are all in scope-free position, resolve closed
    [If]/[Guard], and expand replicated choices over closed sets ([Ext_over]
    of an empty set becomes [Stop], [Inter_over] of an empty set becomes
    [Skip], [Int_over] of an empty set becomes [Stop]).
    @raise Expr.Eval_error on ill-typed closed expressions. *)

val size : t -> int
(** Number of constructors, for diagnostics and test generators. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering in CSPm-like notation. *)

val to_string : t -> string
