(** CSP process terms, hash-consed.

    This is the syntax of Section IV-A2 of the paper (Stop, prefix, external
    choice, sequential composition, generalized parallel, interleaving)
    extended with the operators the CSPm front end and the CAPL translator
    need: internal choice, hiding, renaming, conditionals, boolean guards,
    replicated choices, alphabetized parallel, [RUN] and [CHAOS], and named
    recursive calls.

    Process states explored by {!Lts} are {e ground} terms: every expression
    outside the scope of an input binder has been folded to a literal by
    {!const_fold}.

    Terms are {e hash-consed}: every term is built through a smart
    constructor that interns it in a global (weak) table, so structurally
    equal terms are physically equal. {!equal} is physical comparison,
    {!hash} reads a precomputed key, and both are O(1) — state interning
    during LTS compilation and product search never walks a term twice.
    Because construction is interning, {!subst} and {!const_fold} are
    identity-preserving: when no rewrite applies they return a term
    physically equal to their input, so transition caches keyed on terms
    actually hit. *)

(** One field of a communication: output ([c!e] / [c.e]) or input ([c?x],
    optionally restricted to a set [c?x:S]). Input binders scope over the
    remaining fields and the continuation. *)
type comm_item =
  | Out of Expr.t
  | In of string * Expr.t option

(** A term is a unique id, a precomputed hash key, and its top node. The
    record is [private]: read [node] freely (e.g. [match Proc.view p with
    ...]), but build terms only through the smart constructors below. *)
type t = private {
  id : int;  (** unique per live structurally-distinct term *)
  hkey : int;  (** structural hash, precomputed at construction *)
  node : node;
}

and node =
  | Stop
  | Skip
  | Omega  (** the terminated process (after [tick]); not user-written *)
  | Prefix of string * comm_item list * t
  | Ext of t * t
  | Int of t * t
  | Seq of t * t
  | Par of t * Eventset.t * t  (** generalized parallel [P [|A|] Q] *)
  | APar of t * Eventset.t * Eventset.t * t
      (** alphabetized parallel [P [A||B] Q] *)
  | Inter of t * t  (** interleaving [P ||| Q] *)
  | Interrupt of t * t
      (** [P /\ Q]: [P] runs until a (visible) event of [Q] occurs, which
          takes over permanently *)
  | Timeout of t * t
      (** sliding choice [P [> Q]: [P] may be withdrawn silently in favour
          of [Q] at any point before its first visible event *)
  | Hide of t * Eventset.t
  | Rename of t * (string * string) list  (** channel-to-channel renaming *)
  | If of Expr.t * t * t
  | Guard of Expr.t * t  (** CSPm boolean guard [b & P] *)
  | Call of string * Expr.t list
  | Ext_over of string * Expr.t * t  (** replicated external choice *)
  | Int_over of string * Expr.t * t  (** replicated internal choice *)
  | Inter_over of string * Expr.t * t  (** replicated interleaving *)
  | Run of Eventset.t  (** [RUN(A)]: always offers every event of [A] *)
  | Chaos of Eventset.t
      (** [CHAOS(A)]: may nondeterministically accept or refuse [A] *)

val view : t -> node
(** The top node, for pattern matching. *)

val id : t -> int
(** The unique id. Stable for the lifetime of the term; ids of dead terms
    may be reused for {e structurally identical} resurrections only. *)

val equal : t -> t -> bool
(** Physical equality — O(1), and equivalent to structural equality by the
    hash-consing invariant. *)

val compare : t -> t -> int
(** Deterministic {e structural} order (independent of construction order),
    with an O(1) physical shortcut for equal terms. Used where reproducible
    ordering matters, e.g. sorting transition lists. *)

val hash : t -> int
(** The precomputed structural hash key — O(1). *)

val structural_equal : t -> t -> bool
(** Deep structural equality that does {e not} rely on the hash-consing
    invariant ([compare p q = 0]). Testing/oracle hook: with interning
    working correctly this coincides with {!equal}. *)

val structural_hash : t -> int
(** Deep structural hash that ignores ids and interning. Oracle companion
    of {!structural_equal}. *)

(** {1 Smart constructors}

    Every constructor interns the result. [hide] and [rename] additionally
    collapse stacked identical wrappers ([((p \ A) \ A)] is [p \ A]):
    recursion through a hiding or renaming context (P = (a -> P) \ A) would
    otherwise build unboundedly nested terms and an infinite state space.
    Both rewrites are sound: hiding and renaming are idempotent for the
    same set/mapping. *)

val stop : t
val skip : t
val omega : t
val prefix_items : string * comm_item list * t -> t
val ext : t * t -> t
val intc : t * t -> t
(** Internal choice [P |~| Q]. *)

val seq : t * t -> t
val par : t * Eventset.t * t -> t
val apar : t * Eventset.t * Eventset.t * t -> t
val inter : t * t -> t
val interrupt : t * t -> t
val timeout : t * t -> t
val hide : t * Eventset.t -> t
val rename : t * (string * string) list -> t
val ite : Expr.t * t * t -> t
val guard : Expr.t * t -> t
val call : string * Expr.t list -> t
val ext_over : string * Expr.t * t -> t
val int_over : string * Expr.t * t -> t
val inter_over : string * Expr.t * t -> t
val run : Eventset.t -> t
val chaos : Eventset.t -> t

val prefix : string -> Expr.t list -> t -> t
(** [prefix c args p] is the all-output prefix [c.args -> p]. *)

val ext_all : t list -> t
(** External choice over a list of branches, [stop] when empty. Builds a
    balanced tree rather than a left spine: choice is associative, and a
    spine of N branches costs every downstream per-node traversal O(N^2)
    where the balanced shape costs O(N log N). *)

val inter_all : t list -> t
(** Interleaving over a list of components, [skip] when empty. Balanced
    for the same reason as {!ext_all}; the shape also bounds the
    combinator-tree depth the staged compiler walks per state. *)

val send : string -> Value.t list -> t -> t
(** Like {!prefix} with literal values. *)

val recv : string -> string list -> t -> t
(** [recv c xs p] is the all-input prefix [c?x1...?xn -> p]. *)

val interned : unit -> int
(** Number of live interned terms (diagnostics/benchmarks). *)

val free_vars : t -> string list
(** Variables not bound by an input binder or replicated-choice binder. *)

val subst : (string -> Value.t option) -> t -> t
(** Capture-avoiding substitution of values for free variables. Returns a
    term physically equal to the input when nothing is substituted. *)

val const_fold : ?tys:Ty.lookup -> Expr.fenv -> t -> t
(** Normalize a term for use as an LTS state: evaluate every expression
    whose free variables are all in scope-free position, resolve closed
    [If]/[Guard], and expand replicated choices over closed sets ([Ext_over]
    of an empty set becomes [Stop], [Inter_over] of an empty set becomes
    [Skip], [Int_over] of an empty set becomes [Stop]). Identity-preserving:
    an already-normal term is returned physically unchanged.
    @raise Expr.Eval_error on ill-typed closed expressions. *)

val size : t -> int
(** Number of constructors, for diagnostics and test generators. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering in CSPm-like notation. *)

val to_string : t -> string
