type t = {
  id : int;
  domain_limit : int;
  channels : (string, Ty.t list) Hashtbl.t;
  mutable channel_order : string list;  (* reverse declaration order *)
  types : (string, Ty.def) Hashtbl.t;
  ctors : (string, string * Ty.t list) Hashtbl.t;  (* ctor -> (datatype, args) *)
  procs : (string, string list * Proc.t) Hashtbl.t;
  funcs : (string, string list * Expr.t) Hashtbl.t;
}

exception Duplicate of string
exception Unknown_channel of string

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let create ?(domain_limit = 100_000) () =
  {
    id = fresh_id ();
    domain_limit;
    channels = Hashtbl.create 16;
    channel_order = [];
    types = Hashtbl.create 16;
    ctors = Hashtbl.create 16;
    procs = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
  }

let copy t =
  {
    id = fresh_id ();
    domain_limit = t.domain_limit;
    channels = Hashtbl.copy t.channels;
    channel_order = t.channel_order;
    types = Hashtbl.copy t.types;
    ctors = Hashtbl.copy t.ctors;
    procs = Hashtbl.copy t.procs;
    funcs = Hashtbl.copy t.funcs;
  }

let check_fresh tbl kind name =
  if Hashtbl.mem tbl name then raise (Duplicate (kind ^ " " ^ name))

let declare_channel t name tys =
  check_fresh t.channels "channel" name;
  Hashtbl.replace t.channels name tys;
  t.channel_order <- name :: t.channel_order

let declare_datatype t name ctors =
  check_fresh t.types "type" name;
  List.iter (fun (c, _) -> check_fresh t.ctors "constructor" c) ctors;
  Hashtbl.replace t.types name (Ty.Variants ctors);
  List.iter (fun (c, args) -> Hashtbl.replace t.ctors c (name, args)) ctors

let declare_nametype t name ty =
  check_fresh t.types "type" name;
  Hashtbl.replace t.types name (Ty.Alias ty)

let define_proc t name params body =
  check_fresh t.procs "process" name;
  Hashtbl.replace t.procs name (params, body)

let define_fun t name params body =
  check_fresh t.funcs "function" name;
  Hashtbl.replace t.funcs name (params, body)

let id t = t.id

let channel_type t name = Hashtbl.find_opt t.channels name

let channels t =
  List.rev_map (fun c -> c, Hashtbl.find t.channels c) t.channel_order

let proc t name = Hashtbl.find_opt t.procs name

let procs t =
  Hashtbl.fold (fun name def acc -> (name, def) :: acc) t.procs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let ty_lookup t name = Hashtbl.find_opt t.types name

let fenv t name = Hashtbl.find_opt t.funcs name

let funcs t =
  Hashtbl.fold (fun name def acc -> (name, def) :: acc) t.funcs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_ctor t c = Hashtbl.find_opt t.ctors c

let datatypes t =
  Hashtbl.fold
    (fun name def acc ->
      match def with
      | Ty.Variants ctors -> (name, ctors) :: acc
      | Ty.Alias _ -> acc)
    t.types []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let nametypes t =
  Hashtbl.fold
    (fun name def acc ->
      match def with
      | Ty.Alias ty -> (name, ty) :: acc
      | Ty.Variants _ -> acc)
    t.types []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let field_types t chan =
  match channel_type t chan with
  | Some tys -> tys
  | None -> raise (Unknown_channel chan)

let domain_limit t = t.domain_limit
let domain t ty = Ty.domain ~limit:t.domain_limit (ty_lookup t) ty

let field_domain t ~chan i =
  let tys = field_types t chan in
  match List.nth_opt tys i with
  | Some ty -> Ty.domain ~limit:t.domain_limit (ty_lookup t) ty
  | None ->
    invalid_arg
      (Printf.sprintf "Defs.field_domain: channel %s has no field %d" chan i)

let chan_events t chan =
  let tys = field_types t chan in
  let domains = List.map (Ty.domain ~limit:t.domain_limit (ty_lookup t)) tys in
  let rec product = function
    | [] -> [ [] ]
    | dom :: rest ->
      let tails = product rest in
      List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) dom
  in
  List.map (fun args -> Event.event chan args) (product domains)

let events_of t set = Eventset.enumerate ~chan_events:(chan_events t) set

let alphabet t =
  List.concat_map (fun (c, _) -> chan_events t c) (channels t)
