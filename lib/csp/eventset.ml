type t =
  | Empty
  | Chans of string list
  | Prefixed of string * Value.t list
      (* {| c.v1...vk |}: every event on c whose first k args are v1..vk *)
  | Events of Event.t list
  | Union of t * t
  | Diff of t * t

let empty = Empty
let chan c = Chans [ c ]
let chans cs = match cs with [] -> Empty | _ -> Chans (List.sort_uniq String.compare cs)

let prefixed chan args = if args = [] then Chans [ chan ] else Prefixed (chan, args)
let events es =
  match es with [] -> Empty | _ -> Events (List.sort_uniq Event.compare es)

let union s1 s2 =
  match s1, s2 with
  | Empty, s | s, Empty -> s
  | Chans c1, Chans c2 -> Chans (List.sort_uniq String.compare (c1 @ c2))
  | Events e1, Events e2 -> Events (List.sort_uniq Event.compare (e1 @ e2))
  | _ -> Union (s1, s2)

let union_all sets = List.fold_left union Empty sets

let diff s1 s2 =
  match s1, s2 with
  | Empty, _ -> Empty
  | s, Empty -> s
  | _ -> Diff (s1, s2)

let rec values_prefix prefix args =
  match prefix, args with
  | [], _ -> true
  | _, [] -> false
  | p :: ps, a :: rest -> Value.equal p a && values_prefix ps rest

let rec mem set e =
  match set with
  | Empty -> false
  | Chans cs -> List.exists (String.equal e.Event.chan) cs
  | Prefixed (c, prefix) ->
    String.equal e.Event.chan c && values_prefix prefix e.Event.args
  | Events es -> List.exists (Event.equal e) es
  | Union (s1, s2) -> mem s1 e || mem s2 e
  | Diff (s1, s2) -> mem s1 e && not (mem s2 e)

let rec is_empty_syntactically = function
  | Empty -> true
  | Chans cs -> cs = []
  | Prefixed _ -> false
  | Events es -> es = []
  | Union (s1, s2) -> is_empty_syntactically s1 && is_empty_syntactically s2
  | Diff (s1, _) -> is_empty_syntactically s1

let channels_mentioned set =
  let rec go acc = function
    | Empty -> acc
    | Chans cs -> cs @ acc
    | Prefixed (c, _) -> c :: acc
    | Events es -> List.map (fun e -> e.Event.chan) es @ acc
    | Union (s1, s2) | Diff (s1, s2) -> go (go acc s1) s2
  in
  List.sort_uniq String.compare (go [] set)

let enumerate ~chan_events set =
  let rec go = function
    | Empty -> []
    | Chans cs -> List.concat_map chan_events cs
    | Prefixed (c, prefix) ->
      List.filter
        (fun e -> values_prefix prefix e.Event.args)
        (chan_events c)
    | Events es -> es
    | Union (s1, s2) -> go s1 @ go s2
    | Diff (s1, s2) ->
      let excluded = go s2 in
      List.filter (fun e -> not (List.exists (Event.equal e) excluded)) (go s1)
  in
  List.sort_uniq Event.compare (go set)

(* Syntactic equality (two denotationally equal sets built differently
   compare unequal — same contract as the old polymorphic compare).
   Monomorphic because process-term interning probes it on every [Par],
   [Hide] and [Run] construction. *)
let rec equal s1 s2 =
  s1 == s2
  ||
  match s1, s2 with
  | Empty, Empty -> true
  | Chans c1, Chans c2 -> List.equal String.equal c1 c2
  | Prefixed (c1, a1), Prefixed (c2, a2) ->
    String.equal c1 c2 && Value.equal_list a1 a2
  | Events e1, Events e2 -> List.equal Event.equal e1 e2
  | Union (a1, b1), Union (a2, b2) | Diff (a1, b1), Diff (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | (Empty | Chans _ | Prefixed _ | Events _ | Union _ | Diff _), _ -> false

let rec pp ppf = function
  | Empty -> Format.pp_print_string ppf "{}"
  | Prefixed (c, prefix) ->
    Format.fprintf ppf "{|%s" c;
    List.iter (fun v -> Format.fprintf ppf ".%a" Value.pp_atom v) prefix;
    Format.fprintf ppf "|}"
  | Chans cs ->
    Format.fprintf ppf "{|%a|}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_string)
      cs
  | Events es ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Event.pp)
      es
  | Union (s1, s2) -> Format.fprintf ppf "union(%a, %a)" pp s1 pp s2
  | Diff (s1, s2) -> Format.fprintf ppf "diff(%a, %a)" pp s1 pp s2

let to_string s = Format.asprintf "%a" pp s
