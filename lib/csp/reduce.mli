(** Staged state-space reduction: the pipeline between compiling an
    implementation and searching the refinement product.

    The raw engine steps the whole composed process term once per product
    state, which is dominated by re-combining the transition lists of large
    parallel compositions (the Needham–Schroeder intruder alone contributes
    hundreds of interleaved knowledge cells). This module replaces that
    monolithic path with stages, in the spirit of FDR's supercompilation:

    + {b Staged compilation} ({!compile_staged}): the term's parallel
      structure ([Par]/[APar]/[Inter]/[Hide]/[Rename], unfolding named
      calls) is decomposed into a tree of lazy combinator nodes. Leaves
      step their (small) subterms through the operational semantics;
      composition nodes work on integer component states with memoized
      transition rows and event-indexed synchronisation lookup. Nothing is
      materialized except the {e root} reachable graph — intermediate
      components are never explored beyond what the whole system reaches,
      so an interleaving of hundreds of two-state cells costs its reachable
      product, not [2^cells].
    + {b Graph passes} ({!apply}): composable [Lts.t -> Lts.t] reductions —
      dead-event hiding against the specification alphabet, tau
      compression, strong-bisimulation quotienting — each obs-instrumented
      with a span and states-before/after counters.
    + {b Search-time reduction} ({!por_hooks}): ample-set partial-order
      reduction applied on the fly by [Search.product].

    Every pass preserves verdicts for the model it is enabled under (see
    {!effective}); counterexamples of reduced searches are re-derived by
    the raw engine so they stay byte-identical to [--reductions none]. *)

(** One reduction pass. String names (for [--reductions], fingerprints and
    stats): ["dead"], ["tau"], ["bisim"], ["por"]. *)
type pass =
  | Dead_events
      (** Relabel to [tau] every visible event the specification
          self-loops on at {e every} normal-form node: such events can
          neither cause nor mask a violation, and hiding them exposes tau
          compression. Sound for traces refinement only (it changes
          stability). *)
  | Tau_compress
      (** Under traces: full tau elimination (each state adopts the
          visible edges of its tau closure; unreachable states dropped).
          Under failures / FD: collapse tau-SCCs to a representative that
          keeps a tau self-loop, preserving instability and divergence. *)
  | Bisim
      (** Strong-bisimulation quotient by signature-refinement partition
          refinement. Sound in every model. *)
  | Por
      (** Ample-set partial-order reduction, applied during the product
          search rather than to the graph; traces refinement only. *)

type pipeline = pass list

val default_pipeline : pipeline
(** All four passes. Model-inapplicable passes are filtered by
    {!effective}, so the default is safe for every check. *)

val pass_name : pass -> string

val pipeline_of_string : string -> (pipeline, string) result
(** Parse a [--reductions] argument: ["none"], ["default"], or a
    comma-separated subset of pass names (e.g. ["bisim,tau"]). *)

val pipeline_to_string : pipeline -> string
(** Canonical rendering: passes in canonical order, comma-separated;
    ["none"] for the empty pipeline. *)

val effective :
  model:[ `Traces | `Failures | `Fd ] -> pipeline -> pipeline
(** The passes that actually run for a model, in canonical application
    order (dead, tau, bisim, por): [Dead_events] and [Por] are traces-only,
    [Tau_compress] and [Bisim] apply everywhere. *)

val fingerprint : pipeline -> string
(** [pipeline_to_string] of the pipeline as given (callers pass the
    {!effective} pipeline); recorded in checkpoints and digests so a
    resume under different reductions fails loudly. *)

val compile_staged :
  ?max_states:int ->
  ?stop_at:float ->
  ?cancel:(unit -> bool) ->
  ?obs:Obs.t ->
  Defs.t ->
  Proc.t ->
  Lts.compile_result
(** Compile the reachable graph of a ground term through the lazy
    combinator tree. Produces the same reachable behaviour as
    [Lts.compile_budgeted] (state terms may differ cosmetically where
    named calls were unfolded during decomposition). [max_states]
    (default [1_000_000]) bounds the {e total} states interned across all
    tree nodes; exceeding it, passing [stop_at], or a true [cancel] poll
    returns [Partial] — callers fall back to the raw path. [obs] records
    a [reduce.compile_staged] span and a state counter. *)

type pass_stat = {
  pass : string;
  states_before : int;
  states_after : int;
}

val apply :
  ?obs:Obs.t ->
  model:[ `Traces | `Failures | `Fd ] ->
  norm:Normalise.t ->
  pipeline ->
  Lts.t ->
  Lts.t * pass_stat list
(** Run the graph passes of the pipeline (in {!effective} order; [Por] is
    ignored here) over an implementation graph, against the normalised
    specification [norm]. Returns the reduced graph and one stat per pass
    run, in application order. *)

val por_hooks : norm:Normalise.t -> Lts.t -> Search.por
(** Build the ample-set hooks for a compiled implementation graph:
    transition grouping by independent interleaved component (derived from
    the state terms' [Inter] spines, looking through common [Hide]/[Rename]
    wrappers) and the spec-free label predicate. *)
