(** Operational semantics: the labelled-transition relation of process terms.

    [transitions defs p] computes every transition of the ground term [p],
    implementing the standard CSP firing rules (Roscoe): input prefixes are
    expanded over the declared channel-field domains, generalized parallel
    synchronizes on its interface set and on [tick] (the paper's
    {m A \cup \{\checkmark\}}), sequential composition converts the left
    operand's [tick] into [tau], and hiding converts hidden events into
    [tau].

    Invariant: every [Tick]-labelled transition targets {!Proc.Omega}, and
    every target term is normalized with {!Proc.const_fold}, so terms can be
    used directly as hash-table state keys. *)

exception Unguarded of string
(** Raised when unfolding named calls/conditionals more than the unfolding
    limit without reaching a guarding operator — e.g. [P = P]. *)

exception Ill_formed of string
(** Raised on arity mismatches between a prefix and its channel
    declaration, calls to unknown processes, or unbound variables in what
    should be a ground term. *)

val transitions : Defs.t -> Proc.t -> (Event.label * Proc.t) list
(** All transitions, sorted and deduplicated. *)

val make_cached :
  ?obs:Obs.t -> Defs.t -> Proc.t -> (Event.label * Proc.t) list
(** A fresh memoizing transition function with its own private cache.
    Hash-consing makes the key O(1) (physical equality + precomputed
    hash); the cache dies with the closure, so nothing outlives its
    check. [obs] counts cache hits and misses ([semantics.memo_*];
    counters are shared when several steppers are built from one
    handle). *)

val initials : Defs.t -> Proc.t -> Event.label list
(** The labels offered by the term (sorted, deduplicated). *)

val is_stable : Defs.t -> Proc.t -> bool
(** No outgoing [tau] transition. *)
