type t =
  | Int of int
  | Bool of bool
  | Ctor of string * t list
  | Tuple of t list

let sym s = Ctor (s, [])

let rec equal v1 v2 =
  match v1, v2 with
  | Int a, Int b -> a = b
  | Bool a, Bool b -> a = b
  | Ctor (c, args1), Ctor (d, args2) ->
    String.equal c d && equal_list args1 args2
  | Tuple args1, Tuple args2 -> equal_list args1 args2
  | (Int _ | Bool _ | Ctor _ | Tuple _), _ -> false

and equal_list l1 l2 =
  match l1, l2 with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && equal_list xs ys
  | _ -> false

let rec compare v1 v2 =
  match v1, v2 with
  | Int a, Int b -> Stdlib.compare a b
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Bool a, Bool b -> Stdlib.compare a b
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Ctor (c, args1), Ctor (d, args2) ->
    let r = String.compare c d in
    if r <> 0 then r else compare_list args1 args2
  | Ctor _, _ -> -1
  | _, Ctor _ -> 1
  | Tuple args1, Tuple args2 -> compare_list args1 args2

and compare_list l1 l2 =
  match l1, l2 with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let r = compare x y in
    if r <> 0 then r else compare_list xs ys

let rec hash v =
  match v with
  | Int n -> Hashtbl.hash (0, n)
  | Bool b -> Hashtbl.hash (1, b)
  | Ctor (c, args) -> List.fold_left hash_combine (Hashtbl.hash (2, c)) args
  | Tuple args -> List.fold_left hash_combine (Hashtbl.hash 3) args

and hash_combine acc v = (acc * 65599) + hash v

let rec pp ppf v =
  match v with
  | Int n -> Format.pp_print_int ppf n
  | Bool true -> Format.pp_print_string ppf "true"
  | Bool false -> Format.pp_print_string ppf "false"
  | Ctor (c, []) -> Format.pp_print_string ppf c
  | Ctor (c, args) ->
    Format.pp_print_string ppf c;
    List.iter (fun a -> Format.fprintf ppf ".%a" pp_atom a) args
  | Tuple args ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      args

(* Constructor fields with their own fields need parentheses so that
   [c.(d.x).y] is not read as [c.d.x.y]. *)
and pp_atom ppf v =
  match v with
  | Ctor (_, _ :: _) -> Format.fprintf ppf "(%a)" pp v
  | Int _ | Bool _ | Ctor (_, []) | Tuple _ -> pp ppf v

let to_string v = Format.asprintf "%a" pp v

let as_int = function
  | Int n -> n
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_bool = function
  | Bool b -> b
  | v -> invalid_arg ("Value.as_bool: " ^ to_string v)
