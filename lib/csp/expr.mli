(** The CSPm-style expression language embedded in process terms.

    Expressions appear as output fields of prefixes ([c!e]), conditions of
    [if]-processes, arguments of named-process calls, and in set position
    (replicated-choice ranges, input restrictions, membership tests).
    Evaluation is strict and total over ground expressions; unbound
    variables or type mismatches raise {!Eval_error}. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Lit of Value.t
  | Var of string
  | Neg of t
  | Not of t
  | Bin of binop * t * t
  | Tuple of t list
  | Ctor of string * t list
  | Set of t list  (** set literal [{e1, ..., en}] *)
  | Range of t * t  (** integer range [{lo..hi}] *)
  | Ty_dom of Ty.t  (** the domain of a type, used as a set *)
  | Mem of t * t  (** membership [e member S] *)
  | If of t * t * t
  | App of string * t list  (** user-defined function application *)

exception Eval_error of string

type env = Value.t Map.Make(String).t

type fenv = string -> (string list * t) option
(** Resolver for user-defined functions: name to (parameters, body). *)

val no_funcs : fenv

val empty_env : env
val bind : string -> Value.t -> env -> env
val bind_all : (string * Value.t) list -> env -> env

val eval : ?tys:Ty.lookup -> fenv -> env -> t -> Value.t
(** Evaluate in scalar position. [tys] resolves [Ty_dom] references used
    inside membership tests. Function applications are depth-limited to
    guard against unbounded recursion.
    @raise Eval_error on unbound variables, type mismatches, division by
    zero, or evaluating a set in scalar position. *)

val eval_set : ?tys:Ty.lookup -> fenv -> env -> t -> Value.t list
(** Evaluate in set position, returning the sorted, deduplicated elements.
    @raise Eval_error if the expression is not set-valued. *)

val eval_bool : ?tys:Ty.lookup -> fenv -> env -> t -> bool

val free_vars : t -> string list
(** Free variables, sorted and deduplicated. *)

val subst : (string -> Value.t option) -> t -> t
(** Replace free variables by literal values where the resolver is defined. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
(** Comma-separated rendering. *)

val to_string : t -> string

(** Convenience constructors. *)

val int : int -> t
val bool : bool -> t
val sym : string -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( = ) : t -> t -> t
val ( < ) : t -> t -> t
val ( && ) : t -> t -> t
