exception Unguarded of string
exception Ill_formed of string

(* Maximum number of call/conditional unfoldings while computing the
   transitions of a single term. A well-formed script guards recursion with
   a prefix, so genuine chains are short; exceeding the limit means an
   unguarded recursion like [P = P [] Q]. *)
let unfold_limit = 1_000

let err fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

(* Expand a prefix [c it1...itn -> p] into ground communications.
   Returns one (event, continuation) pair per combination of input values.
   Bindings accumulate left to right so later fields and the continuation
   see earlier binders. *)
let expand_prefix defs chan items cont =
  let tys =
    match Defs.channel_type defs chan with
    | Some tys -> tys
    | None -> raise (Defs.Unknown_channel chan)
  in
  if List.length tys <> List.length items then
    err "prefix on %s has %d fields but the channel declares %d" chan
      (List.length items) (List.length tys);
  let fenv = Defs.fenv defs in
  let ty_lookup = Defs.ty_lookup defs in
  let eval_in bindings e =
    let env = Expr.bind_all bindings Expr.empty_env in
    Expr.eval ~tys:ty_lookup fenv env e
  in
  (* combos: list of (bindings, reversed argument values) *)
  let step combos (item, ty) =
    match item with
    | Proc.Out e ->
      List.map
        (fun (bindings, args) ->
          let v = eval_in bindings e in
          if not (Ty.contains ty_lookup ty v) then
            err "value %s outside the domain of a field of channel %s"
              (Value.to_string v) chan;
          bindings, v :: args)
        combos
    | Proc.In (x, restr) ->
      List.concat_map
        (fun (bindings, args) ->
          let base = Defs.domain defs ty in
          let values =
            match restr with
            | None -> base
            | Some set_expr ->
              let env = Expr.bind_all bindings Expr.empty_env in
              let allowed = Expr.eval_set ~tys:ty_lookup fenv env set_expr in
              List.filter (fun v -> List.exists (Value.equal v) allowed) base
          in
          List.map (fun v -> (x, v) :: bindings, v :: args) values)
        combos
  in
  let combos = List.fold_left step [ ([], []) ] (List.combine items tys) in
  List.map
    (fun (bindings, rev_args) ->
      let event = Event.event chan (List.rev rev_args) in
      let resolve x = List.assoc_opt x bindings in
      let cont' = Proc.const_fold ~tys:ty_lookup fenv (Proc.subst resolve cont) in
      Event.Vis event, cont')
    combos

(* The transition relation, parameterized over a memo for recursive
   calls. [trans] is compositional in the term ([depth] only guards
   unguarded recursion), so its value may be cached per {e subterm}: a
   parallel composition of n cells then recomputes only the O(spine)
   terms an event actually rewrote, instead of re-deriving every cell's
   transitions in every state that contains it. *)
let transitions_via lookup store defs proc =
  let fenv = Defs.fenv defs in
  let ty_lookup = Defs.ty_lookup defs in
  let fold p = Proc.const_fold ~tys:ty_lookup fenv p in
  (* Split transitions of a parallel operand into (taus, ticks, syncing
     visibles, free visibles) according to a synchronization predicate. *)
  let rec trans depth p : (Event.label * Proc.t) list =
    match lookup p with
    | Some ts -> ts
    | None ->
      let ts = compute depth p in
      store p ts;
      ts
  and compute depth p : (Event.label * Proc.t) list =
    if depth > unfold_limit then
      raise (Unguarded (Proc.to_string p));
    match Proc.view p with
    | Proc.Stop | Proc.Omega -> []
    | Proc.Skip -> [ Event.Tick, Proc.omega ]
    | Proc.Prefix (chan, items, cont) -> expand_prefix defs chan items cont
    | Proc.Ext (p1, p2) ->
      let resolve_side mk =
        List.map (fun (l, t) ->
          match l with
          | Event.Tau -> Event.Tau, mk t
          | Event.Tick -> Event.Tick, Proc.omega
          | Event.Vis _ -> l, t)
      in
      resolve_side (fun t -> Proc.ext (t, p2)) (trans depth p1)
      @ resolve_side (fun t -> Proc.ext (p1, t)) (trans depth p2)
    | Proc.Int (p1, p2) -> [ Event.Tau, p1; Event.Tau, p2 ]
    | Proc.Seq (p1, p2) ->
      List.map
        (fun (l, t) ->
          match l with
          | Event.Tick -> Event.Tau, p2
          | Event.Tau | Event.Vis _ -> l, Proc.seq (t, p2))
        (trans depth p1)
    | Proc.Par (p1, iface, p2) ->
      let sync e = Eventset.mem iface e in
      par_trans depth p1 p2 ~sync ~allowed_left:(fun _ -> true)
        ~allowed_right:(fun _ -> true)
        ~mk:(fun a b -> Proc.par (a, iface, b))
    | Proc.APar (p1, alpha_a, alpha_b, p2) ->
      let sync e = Eventset.mem alpha_a e && Eventset.mem alpha_b e in
      par_trans depth p1 p2 ~sync
        ~allowed_left:(fun e -> Eventset.mem alpha_a e)
        ~allowed_right:(fun e -> Eventset.mem alpha_b e)
        ~mk:(fun a b -> Proc.apar (a, alpha_a, alpha_b, b))
    | Proc.Inter (p1, p2) ->
      par_trans depth p1 p2 ~sync:(fun _ -> false)
        ~allowed_left:(fun _ -> true) ~allowed_right:(fun _ -> true)
        ~mk:(fun a b -> Proc.inter (a, b))
    | Proc.Interrupt (p1, p2) ->
      (* P events continue under the interrupt; any visible event of Q
         takes over for good; Q's taus resolve its internal state without
         giving up on P; ticks of either side terminate. *)
      let from_p =
        List.map
          (fun (l, t) ->
            match l with
            | Event.Tick -> Event.Tick, Proc.omega
            | Event.Tau | Event.Vis _ -> l, Proc.interrupt (t, p2))
          (trans depth p1)
      in
      let from_q =
        List.map
          (fun (l, t) ->
            match l with
            | Event.Tau -> Event.Tau, Proc.interrupt (p1, t)
            | Event.Tick -> Event.Tick, Proc.omega
            | Event.Vis _ -> l, t)
          (trans depth p2)
      in
      from_p @ from_q
    | Proc.Timeout (p1, p2) ->
      (* sliding choice: P's visible events commit to P; at any moment a
         tau may withdraw P in favour of Q. *)
      let from_p =
        List.map
          (fun (l, t) ->
            match l with
            | Event.Tau -> Event.Tau, Proc.timeout (t, p2)
            | Event.Tick -> Event.Tick, Proc.omega
            | Event.Vis _ -> l, t)
          (trans depth p1)
      in
      (Event.Tau, p2) :: from_p
    | Proc.Hide (p1, set) ->
      List.map
        (fun (l, t) ->
          match l with
          | Event.Vis e when Eventset.mem set e -> Event.Tau, Proc.hide (t, set)
          | Event.Tick -> Event.Tick, Proc.omega
          | Event.Tau | Event.Vis _ -> l, Proc.hide (t, set))
        (trans depth p1)
    | Proc.Rename (p1, mapping) ->
      List.map
        (fun (l, t) ->
          match l with
          | Event.Vis e ->
            let chan =
              match List.assoc_opt e.Event.chan mapping with
              | Some c' -> c'
              | None -> e.Event.chan
            in
            Event.Vis { e with Event.chan }, Proc.rename (t, mapping)
          | Event.Tick -> Event.Tick, Proc.omega
          | Event.Tau -> Event.Tau, Proc.rename (t, mapping))
        (trans depth p1)
    | Proc.If (cond, p1, p2) ->
      let b =
        try Expr.eval_bool ~tys:ty_lookup fenv Expr.empty_env cond
        with Expr.Eval_error msg -> err "if condition: %s" msg
      in
      trans (depth + 1) (if b then p1 else p2)
    | Proc.Guard (cond, p1) ->
      let b =
        try Expr.eval_bool ~tys:ty_lookup fenv Expr.empty_env cond
        with Expr.Eval_error msg -> err "guard: %s" msg
      in
      if b then trans (depth + 1) p1 else []
    | Proc.Call (f, args) ->
      (match Defs.proc defs f with
       | None -> err "call to unknown process %s" f
       | Some (params, body) ->
         if List.length params <> List.length args then
           err "process %s expects %d arguments, got %d" f (List.length params)
             (List.length args);
         let values =
           List.map
             (fun e ->
               try Expr.eval ~tys:ty_lookup fenv Expr.empty_env e
               with Expr.Eval_error msg ->
                 err "argument of %s: %s" f msg)
             args
         in
         let bindings = List.combine params values in
         let resolve x = List.assoc_opt x bindings in
         trans (depth + 1) (fold (Proc.subst resolve body)))
    | Proc.Ext_over _ | Proc.Int_over _ | Proc.Inter_over _ ->
      (* const_fold expands closed replicated choices; reaching here means
         the set was not closed, i.e. the term is not ground. *)
      let folded = fold p in
      if Proc.equal folded p then err "replicated choice over a non-ground set"
      else trans (depth + 1) folded
    | Proc.Run set ->
      List.map (fun e -> Event.Vis e, p) (Defs.events_of defs set)
    | Proc.Chaos set ->
      (Event.Tau, Proc.stop)
      :: List.map (fun e -> Event.Vis e, p) (Defs.events_of defs set)
  and par_trans depth p1 p2 ~sync ~allowed_left ~allowed_right ~mk =
    let t1 = trans depth p1 in
    let t2 = trans depth p2 in
    let free side_allowed mk_side ts =
      List.filter_map
        (fun (l, t) ->
          match l with
          | Event.Tau -> Some (Event.Tau, mk_side t)
          | Event.Vis e when (not (sync e)) && side_allowed e ->
            Some (l, mk_side t)
          | Event.Vis _ | Event.Tick -> None)
        ts
    in
    let syncing ts =
      List.filter_map
        (fun (l, t) ->
          match l with
          | Event.Vis e when sync e -> Some (e, t)
          | Event.Vis _ | Event.Tau | Event.Tick -> None)
        ts
    in
    let ticks ts =
      List.exists (fun (l, _) -> match l with Event.Tick -> true | _ -> false) ts
    in
    let left = free allowed_left (fun t -> mk t p2) t1 in
    let right = free allowed_right (fun t -> mk p1 t) t2 in
    let synced =
      List.concat_map
        (fun (e1, t1') ->
          List.filter_map
            (fun (e2, t2') ->
              if Event.equal e1 e2 then Some (Event.Vis e1, mk t1' t2')
              else None)
            (syncing t2))
        (syncing t1)
    in
    let tick =
      if ticks t1 && ticks t2 then [ Event.Tick, Proc.omega ] else []
    in
    left @ right @ synced @ tick
  in
  let result = trans 0 proc in
  List.sort_uniq
    (fun (l1, t1) (l2, t2) ->
      let r = Event.compare_label l1 l2 in
      if r <> 0 then r else Proc.compare t1 t2)
    result

let transitions defs proc =
  transitions_via (fun _ -> None) (fun _ _ -> ()) defs proc

(* Transition memoization. Hash-consing makes the cache key O(1): lookup
   is physical equality on the interned term plus its precomputed hash.
   Caches are always private to their creator — a per-check cache dies
   with the check, so no global table outlives a dropped [Defs.t]. *)
module Proc_tbl = Hashtbl.Make (struct
  type t = Proc.t

  let equal = Proc.equal
  let hash = Proc.hash
end)

let make_cached ?(obs = Obs.silent) defs =
  (* two tables: [memo] holds raw per-subterm transition lists shared by
     every recursive call; [sorted] holds the deduplicated, sorted
     top-level answers handed to callers *)
  let memo = Proc_tbl.create 4096 in
  let sorted = Proc_tbl.create 4096 in
  let c_hits = Obs.counter obs "semantics.memo_hits" in
  let c_misses = Obs.counter obs "semantics.memo_misses" in
  fun proc ->
    match Proc_tbl.find_opt sorted proc with
    | Some ts ->
      Obs.incr c_hits;
      ts
    | None ->
      Obs.incr c_misses;
      let ts =
        transitions_via
          (Proc_tbl.find_opt memo)
          (Proc_tbl.replace memo)
          defs proc
      in
      Proc_tbl.replace sorted proc ts;
      ts

let initials defs proc =
  List.sort_uniq Event.compare_label (List.map fst (transitions defs proc))

let is_stable defs proc =
  not
    (List.exists
       (fun (l, _) -> match l with Event.Tau -> true | _ -> false)
       (transitions defs proc))
