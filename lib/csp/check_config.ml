(* One record instead of six optional arguments: every check entry point
   takes [?config] and unpacks it, so adding a knob (like the obs handle)
   is a one-field change instead of a signature sweep across four
   libraries. *)

type t = {
  interner : Search.interner;
  max_states : int;
  max_pairs : int option;
  deadline : float option;
  workers : int;
  obs : Obs.t;
  progress : (Search.progress -> unit) option;
  cancel : (unit -> bool) option;
  memory_limit_mb : int option;
  reductions : Reduce.pipeline;
  cache : Cache.t option;
}

let default =
  {
    interner = `Id;
    max_states = 1_000_000;
    max_pairs = None;
    deadline = None;
    workers = 1;
    obs = Obs.silent;
    progress = None;
    cancel = None;
    memory_limit_mb = None;
    reductions = Reduce.default_pipeline;
    cache = None;
  }

let with_interner interner t = { t with interner }
let with_max_states max_states t = { t with max_states }
let with_max_pairs n t = { t with max_pairs = Some n }
let with_deadline seconds t = { t with deadline = Some seconds }
let with_workers workers t = { t with workers }
let with_obs obs t = { t with obs }
let with_progress cb t = { t with progress = Some cb }
let with_cancel token t = { t with cancel = Some token }
let with_memory_limit mb t = { t with memory_limit_mb = Some mb }
let with_reductions reductions t = { t with reductions }
let with_cache cache t = { t with cache = Some cache }
