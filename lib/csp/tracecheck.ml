(* Streaming trace containment over the specification's normal form.

   [Normalise.after] is a linear scan of the node's edge list — fine for
   the product search, which consults it once per explored pair, but a
   trace checker consults it once per logged event. [compile] therefore
   freezes the normal form into per-node hash tables keyed by label, so
   a step is one hashtable probe regardless of branching factor. *)

module Label_tbl = Hashtbl.Make (struct
  type t = Event.label

  let equal = Event.equal_label

  let hash = function
    | Event.Tau -> 0
    | Event.Tick -> 1
    | Event.Vis e -> Event.hash e
end)

type t = {
  edges : int Label_tbl.t array;  (* per node: label -> successor *)
  expected : Event.label list array;  (* per node: sorted edge labels *)
  terminal : bool array;  (* per node: has a Tick edge *)
  chans : (string, unit) Hashtbl.t;  (* observable channels *)
  initial : int;
}

let num_nodes t = Array.length t.edges

let alphabet t =
  List.sort String.compare
    (Hashtbl.fold (fun c () acc -> c :: acc) t.chans [])

let of_norm ?alphabet:alpha norm =
  let n = Normalise.num_nodes norm in
  let edges = Array.init n (fun _ -> Label_tbl.create 4) in
  let expected = Array.make n [] in
  let terminal = Array.make n false in
  let chans = Hashtbl.create 16 in
  let derive_alphabet = alpha = None in
  (match alpha with
   | Some cs -> List.iter (fun c -> Hashtbl.replace chans c ()) cs
   | None -> ());
  for i = 0 to n - 1 do
    let afters = Normalise.afters norm i in
    expected.(i) <- List.map fst afters;
    terminal.(i) <- Normalise.can_terminate norm i;
    List.iter
      (fun (label, j) ->
        Label_tbl.replace edges.(i) label j;
        match label with
        | Event.Vis e when derive_alphabet ->
          Hashtbl.replace chans e.Event.chan ()
        | _ -> ())
      afters
  done;
  { edges; expected; terminal; chans; initial = Normalise.initial norm }

(* Cache-fronted compile, the [Refine.cached_spec] pattern: only
   [Complete] results are stored, and a hit skips the compile/normalise
   spans entirely. *)
let compile ?(config = Check_config.default) ?alphabet defs spec =
  let obs = config.Check_config.obs in
  let budget_error (progress : Lts.progress) =
    Error
      (Printf.sprintf
         "specification graph exceeded its %s budget (%d states explored)"
         (match progress.Lts.reason with
          | `States -> "state"
          | `Deadline -> "deadline")
         progress.Lts.explored)
  in
  let fresh () =
    match
      Lts.compile_budgeted ~max_states:config.Check_config.max_states ~obs
        defs spec
    with
    | Lts.Partial (_, progress) -> budget_error progress
    | Lts.Complete lts -> Ok (lts, Normalise.normalise ~obs lts)
  in
  let norm =
    match config.Check_config.cache with
    | None -> Result.map snd (fresh ())
    | Some cache ->
      let key =
        Cache.spec_key ~max_states:config.Check_config.max_states defs spec
      in
      (match Cache.find cache key with
       | Some (Cache.Norm_spec (_, norm)) -> Ok norm
       | Some _ | None ->
         Result.map
           (fun (lts, norm) ->
             Cache.add cache key (Cache.Norm_spec (lts, norm));
             norm)
           (fresh ()))
  in
  Result.map (fun norm -> of_norm ?alphabet norm) norm

type verdict =
  | Accepted
  | Rejected of {
      position : int;
      offending : Event.label;
      expected : Event.label list;
    }

type cursor = {
  node : int;  (* -1 once the spec has terminated (after Tick) *)
  position : int;
  skipped : int;
  rejected : verdict option;  (* latched [Rejected _] *)
}

let start t = { node = t.initial; position = 0; skipped = 0; rejected = None }
let verdict c = match c.rejected with Some v -> v | None -> Accepted
let consumed c = c.position
let skipped c = c.skipped

let reject c label expected =
  {
    c with
    position = c.position + 1;
    rejected = Some (Rejected { position = c.position; offending = label; expected });
  }

let step t c label =
  if c.rejected <> None then c
  else
    match label with
    | Event.Tau -> c
    | Event.Tick ->
      if c.node >= 0 && t.terminal.(c.node) then
        { c with node = -1; position = c.position + 1 }
      else
        reject c label (if c.node >= 0 then t.expected.(c.node) else [])
    | Event.Vis e ->
      if not (Hashtbl.mem t.chans e.Event.chan) then
        { c with position = c.position + 1; skipped = c.skipped + 1 }
      else if c.node < 0 then reject c label []
      else (
        match Label_tbl.find_opt t.edges.(c.node) label with
        | Some next -> { c with node = next; position = c.position + 1 }
        | None -> reject c label t.expected.(c.node))

let check_trace t labels =
  verdict (List.fold_left (step t) (start t) labels)

type stream_result = {
  stream : string;
  events : int;
  skipped_events : int;
  verdict : verdict;
}

type summary = {
  streams : int;
  accepted : int;
  rejected : int;
  events : int;
  skipped_events : int;
  wall_s : float;
  events_per_sec : float;
}

let check_one t (stream, labels) =
  let c = Seq.fold_left (step t) (start t) labels in
  { stream; events = consumed c; skipped_events = skipped c; verdict = verdict c }

let check_streams ?(workers = 1) ?(obs = Obs.silent) t streams =
  Obs.span obs "tracecheck.check_streams" (fun () ->
      let n = Array.length streams in
      let results = Array.make n None in
      let t0 = Obs.now () in
      (* Streams are independent; claim indices off a shared atomic so
         long and short streams balance across domains. Writes land in
         distinct slots, so the results array needs no lock. *)
      let next = Atomic.make 0 in
      let run () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (check_one t streams.(i));
            loop ()
          end
        in
        loop ()
      in
      if workers <= 1 || n <= 1 then run ()
      else begin
        let domains =
          List.init
            (min (workers - 1) (n - 1))
            (fun _ -> Domain.spawn run)
        in
        run ();
        List.iter Domain.join domains
      end;
      let results =
        Array.map
          (function
            | Some r -> r
            | None ->
              invalid_arg "Tracecheck.check_streams: unclaimed stream")
          results
      in
      let wall_s = Obs.now () -. t0 in
      let accepted = ref 0 and rejected = ref 0 in
      let events = ref 0 and skipped_events = ref 0 in
      Array.iter
        (fun r ->
          (match r.verdict with
           | Accepted -> incr accepted
           | Rejected _ -> incr rejected);
          events := !events + r.events;
          skipped_events := !skipped_events + r.skipped_events)
        results;
      let events_per_sec =
        if wall_s > 0. then float_of_int !events /. wall_s else 0.
      in
      if not (Obs.is_silent obs) then begin
        Obs.add (Obs.counter obs "tracecheck.events") !events;
        Obs.add (Obs.counter obs "tracecheck.streams") n;
        Obs.observe
          (Obs.histogram obs "tracecheck.events_per_sec"
             ~buckets:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 |])
          events_per_sec
      end;
      ( results,
        {
          streams = n;
          accepted = !accepted;
          rejected = !rejected;
          events = !events;
          skipped_events = !skipped_events;
          wall_s;
          events_per_sec;
        } ))
