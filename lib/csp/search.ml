type violation =
  | Trace_violation of Event.label
  | Refusal_violation of {
      offered : Event.label list;
      acceptances : Event.label list list;
    }
  | Deadlock
  | Divergence

type counterexample = {
  trace : Event.label list;
  violation : violation;
  impl_state : Proc.t;
}

type stats = {
  impl_states : int;
  spec_nodes : int;
  pairs : int;
  wall_s : float;
  states_per_sec : float;
  peak_frontier : int;
  workers : int;
  par_speedup : float;
  reductions : (string * int * int) list;
}

type budget_kind =
  | Deadline
  | States
  | Pairs
  | Interrupt
  | Memory

let budget_kind_to_string = function
  | Deadline -> "deadline"
  | States -> "states"
  | Pairs -> "pairs"
  | Interrupt -> "interrupt"
  | Memory -> "memory"

let budget_kind_of_string = function
  | "deadline" -> Some Deadline
  | "states" -> Some States
  | "pairs" -> Some Pairs
  | "interrupt" -> Some Interrupt
  | "memory" -> Some Memory
  | _ -> None

(* A checkpoint is a commit-boundary snapshot of the deterministic search:
   because pairs are interned (and committed) in an order that is
   byte-identical at any worker count, "the state after [explored] commits"
   fully determines the remaining search. The [visited_digest] is a rolling
   hash over every interned (impl state, spec node) pair, masked to 52 bits
   so it survives a float-backed JSON round trip exactly; it is validated
   when a resumed run crosses the recorded position, so resuming against
   the wrong script, configuration, or engine version fails loudly instead
   of silently diverging. *)
type checkpoint = {
  explored : int;  (* commits completed at the boundary *)
  pairs : int;  (* product pairs interned at the boundary *)
  impl_states : int;
  visited_digest : int;
  deadline_left : float option;  (* unconsumed wall budget, seconds *)
  exhausted : budget_kind;  (* why the original run stopped *)
  pipeline : string;
      (* fingerprint of the reduction pipeline the search ran under
         ("none" for the raw engine): pair ids and the visit-order digest
         only replay under the same pipeline, so resuming under a
         different one must fail loudly instead of replaying garbage *)
}

type resume_hint = {
  frontier : int;
  deepest : Event.label list;
  exhausted : budget_kind;
  checkpoint : checkpoint option;
}

exception Resume_mismatch of string

(* 52-bit rolling hash: deterministic, cheap (two multiply-adds per
   interned pair), and exactly representable as a JSON number. *)
let digest_mask = 0xF_FFFF_FFFF_FFFF

let digest_mix h k = (((h * 0x1003F) lxor k) * 0x2545F49) land digest_mask

let checkpoint_schema = "cspm-search-checkpoint/1"

let json_of_checkpoint cp =
  let open Obs.Json in
  Obj
    [
      "schema", Str checkpoint_schema;
      "explored", Num (float_of_int cp.explored);
      "pairs", Num (float_of_int cp.pairs);
      "impl_states", Num (float_of_int cp.impl_states);
      "visited_digest", Num (float_of_int cp.visited_digest);
      ( "deadline_left",
        match cp.deadline_left with Some s -> Num s | None -> Null );
      "exhausted", Str (budget_kind_to_string cp.exhausted);
      "reductions", Str cp.pipeline;
    ]

let checkpoint_of_json json =
  let open Obs.Json in
  let int_field name =
    match Option.bind (member name json) to_int with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (Printf.sprintf "checkpoint: negative %S" name)
    | None -> Error (Printf.sprintf "checkpoint: missing integer %S" name)
  in
  match Option.bind (member "schema" json) to_str with
  | Some s when String.equal s checkpoint_schema ->
    Result.bind (int_field "explored") (fun explored ->
        Result.bind (int_field "pairs") (fun pairs ->
            Result.bind (int_field "impl_states") (fun impl_states ->
                Result.bind (int_field "visited_digest") (fun visited_digest ->
                    let deadline_left =
                      Option.bind (member "deadline_left" json) to_float
                    in
                    match
                      Option.bind
                        (Option.bind (member "exhausted" json) to_str)
                        budget_kind_of_string
                    with
                    | Some exhausted ->
                      (* absent in pre-reduction checkpoints, which were
                         always recorded by the raw engine *)
                      let pipeline =
                        Option.value
                          (Option.bind (member "reductions" json) to_str)
                          ~default:"none"
                      in
                      Ok
                        {
                          explored;
                          pairs;
                          impl_states;
                          visited_digest;
                          deadline_left;
                          exhausted;
                          pipeline;
                        }
                    | None -> Error "checkpoint: bad \"exhausted\" kind"))))
  | Some s -> Error (Printf.sprintf "checkpoint: unknown schema %S" s)
  | None -> Error "checkpoint: missing schema tag"

type result =
  | Holds of stats
  | Fails of counterexample
  | Inconclusive of stats * resume_hint

type refusal = [ `None | `Acceptances | `Full ]

(* A raw successor as computed by a worker: not yet interned into the
   dense state space (interning mutates shared tables, so it happens only
   in the deterministic merge phase). *)
type raw_target =
  | Raw_term of Proc.t
  | Raw_state of int

type source = {
  initial : int;
  raw_step : unit -> int -> (Event.label * raw_target) list;
  intern : raw_target -> int;
  term_of : int -> Proc.t;
  state_count : unit -> int;
  divergent : (int -> bool) option;
}

type interner = [ `Id | `Structural ]

(* Ample-set partial-order reduction hooks, supplied by [Reduce.por_hooks]
   for precompiled implementation graphs. [por_groups i] partitions the
   transitions of state [i] into groups that belong to independent
   interleaved components ([] when the state has no such structure);
   [por_spec_free l] holds when the specification is insensitive to [l]
   (it self-loops on [l] at every normal-form node). The engine commits
   only one qualifying group instead of the full successor set when the
   ample conditions hold — see [commit]. *)
type por = {
  por_groups : int -> (Event.label * int) list list;
  por_spec_free : Event.label -> bool;
}

type progress = {
  explored : int;
  pairs : int;
  impl_states : int;
  frontier : int;
  elapsed_s : float;
  rate : float;
  budget_frac : float;
}

(* Deadline polling cadence: a clock read is a syscall, so the dequeue
   loop consults the clock only once per this many explored pairs instead
   of on every pair. Progress callbacks and live gauge updates ride the
   same cadence. *)
let deadline_poll_mask = 255

(* Internal: unwound to an [Inconclusive] verdict at the end of [product],
   where the current counters and frontier are in scope. *)
exception Out_of_budget of budget_kind

let visible_trace labels =
  List.filter
    (fun l -> match l with Event.Vis _ | Event.Tick -> true | Event.Tau -> false)
    labels

let per_sec states wall = if wall > 0. then float_of_int states /. wall else 0.

let make_stats ?(wall_s = 0.) ?(peak_frontier = 0) ?(workers = 1)
    ?(par_speedup = 1.) ?(reductions = []) ~impl_states ~spec_nodes ~pairs ()
    =
  {
    impl_states;
    spec_nodes;
    pairs;
    wall_s;
    states_per_sec = per_sec (max impl_states pairs) wall_s;
    peak_frontier;
    workers;
    par_speedup;
    reductions;
  }

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

module Id_tbl = Hashtbl.Make (struct
  type t = Proc.t

  let equal = Proc.equal
  let hash = Proc.hash
end)

module Structural_tbl = Hashtbl.Make (struct
  type t = Proc.t

  let equal = Proc.structural_equal
  let hash = Proc.structural_hash
end)

(* One polymorphic face over the two intern-table functors, so the
   interning scheme is selectable at runtime (the structural scheme is the
   oracle the hash-consed one is tested against). *)
let proc_interner = function
  | `Id ->
    let tbl = Id_tbl.create 1024 in
    (Id_tbl.find_opt tbl : Proc.t -> int option), Id_tbl.replace tbl
  | `Structural ->
    let tbl = Structural_tbl.create 1024 in
    (Structural_tbl.find_opt tbl, Structural_tbl.replace tbl)

let proc_source ?(interner = `Id) ~make_step term0 =
  let find_opt, replace = proc_interner interner in
  let terms = ref (Array.make 1024 term0) in
  let count = ref 0 in
  let intern_term term =
    match find_opt term with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      if i >= Array.length !terms then begin
        let bigger = Array.make (2 * i) term0 in
        Array.blit !terms 0 bigger 0 i;
        terms := bigger
      end;
      !terms.(i) <- term;
      replace term i;
      i
  in
  let initial = intern_term term0 in
  {
    initial;
    (* each call builds a stepper with a private memo cache: one per
       worker domain, so the parallel hot path takes no locks beyond the
       hash-consing of freshly built terms *)
    raw_step =
      (fun () ->
        let step = make_step () in
        fun i ->
          List.map (fun (l, t) -> l, Raw_term t) (step !terms.(i)));
    intern =
      (fun raw ->
        match raw with
        | Raw_term t -> intern_term t
        | Raw_state _ -> invalid_arg "Search.proc_source: foreign raw target");
    term_of = (fun i -> !terms.(i));
    state_count = (fun () -> !count);
    divergent = None;
  }

let lts_source ?(check_divergence = true) lts =
  let divergent =
    if check_divergence then begin
      let bits = Array.make (max 1 (Lts.num_states lts)) false in
      List.iter (fun i -> bits.(i) <- true) (Lts.divergences lts);
      Some (fun i -> bits.(i))
    end
    else None
  in
  {
    initial = lts.Lts.initial;
    raw_step =
      (fun () i ->
        List.map (fun (l, j) -> l, Raw_state j) (Lts.transitions_of lts i));
    intern =
      (fun raw ->
        match raw with
        | Raw_state j -> j
        | Raw_term _ -> invalid_arg "Search.lts_source: foreign raw target");
    term_of = Lts.state_term lts;
    state_count = (fun () -> Lts.num_states lts);
    divergent;
  }

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

(* A fixed pool of [Domain.t] workers driven level-by-level. The calling
   domain participates as a worker, so a pool of size [w] spawns [w - 1]
   domains. Jobs pull work items through an atomic counter (dynamic load
   balancing) and write results into position-indexed slots, so the merge
   that follows is deterministic no matter how the work was scheduled.
   The mutex/condition handshake on both sides of a job gives the
   happens-before edges that make the shared search arrays safely visible
   to workers (read-only during a job) and their result slots safely
   visible to the merge. *)
module Pool = struct
  type 'a t = {
    mutex : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable epoch : int;
    mutable job : ('a -> unit) option;
    mutable pending : int;
    mutable stop : bool;
    mutable failure : exn option;
    mutable domains : unit Domain.t list;
    caller_state : 'a;
  }

  let worker_loop t init =
    let state = init () in
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.mutex;
      while t.epoch = !seen && not t.stop do
        Condition.wait t.start t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        seen := t.epoch;
        let job = Option.get t.job in
        Mutex.unlock t.mutex;
        (try job state
         with e ->
           Mutex.lock t.mutex;
           if t.failure = None then t.failure <- Some e;
           Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mutex;
        loop ()
      end
    in
    loop ()

  let create ~init size =
    let t =
      {
        mutex = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        epoch = 0;
        job = None;
        pending = 0;
        stop = false;
        failure = None;
        domains = [];
        caller_state = init ();
      }
    in
    t.domains <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t init));
    t

  (* Run [job] on every worker (including the caller); returns once all
     are done. A job that raised in a spawned worker re-raises here. *)
  let run t job =
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.pending <- List.length t.domains;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    let caller_failure =
      try
        job t.caller_state;
        None
      with e -> Some e
    in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    let worker_failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match caller_failure, worker_failure with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains
end

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

module Pair_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end)

(* What a worker computes for one dequeued pair: everything that needs no
   shared mutable state. Interning the successors, recording parent edges
   and deciding the verdict happen later, in frontier order, so the
   outcome is byte-identical to the sequential engine's. *)
type edge =
  | E_step of Event.label * raw_target * int  (* label, successor, spec node *)
  | E_trace_violation of Event.label  (* the specification forbids it *)

type expansion =
  | X_pruned  (* divergent specification node: the subtree is allowed *)
  | X_divergent  (* divergent implementation state: a violation *)
  | X_refusal of Event.label list * Event.label list list
  | X_edges of edge list
  | X_error of exn  (* re-raised in frontier order by the merge *)

(* Level-size buckets for the per-level histogram (pair counts, not
   durations, so the duration defaults don't fit). *)
let level_buckets = [| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384. |]

(* Heap watermark for the memory guard, in MiB. [Gc.quick_stat] reads
   counters without walking the heap, so polling it on the dequeue cadence
   costs about as much as the deadline's clock read. *)
let heap_mb () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  float_of_int (words * (Sys.word_size / 8)) /. (1024. *. 1024.)

let product ~refusal ~max_pairs ?stop_at ?(workers = 1) ?(obs = Obs.silent)
    ?progress ?cancel ?memory_limit_mb ?resume_from ?resume_deadline ?por
    ?(pipeline = "none") ~norm source =
  let workers = max 1 workers in
  (* A checkpoint records the pipeline it was taken under; its pair ids
     and visit-order digest are meaningless under any other pipeline. *)
  (match resume_from with
   | Some cp when not (String.equal cp.pipeline pipeline) ->
     raise
       (Resume_mismatch
          (Printf.sprintf
             "checkpoint was recorded with reductions %S but this run \
              would search with %S — resume with the interrupted run's \
              --reductions setting"
             cp.pipeline pipeline))
   | _ -> ());
  let t0 = Obs.now () in
  (* Metric handles are registered once, here; on a silent handle every
     update below is a single branch and allocates nothing. *)
  let c_explored = Obs.counter obs "search.pairs_explored" in
  let c_interned = Obs.counter obs "search.pairs_interned" in
  let c_worker_items = Obs.counter obs "search.worker_items" in
  let g_frontier = Obs.gauge obs "search.frontier" in
  let g_budget = Obs.gauge obs "search.budget_frac" in
  let g_impl_states = Obs.gauge obs "search.impl_states" in
  let h_level = Obs.histogram ~buckets:level_buckets obs "search.level_pairs" in
  let h_batch =
    Obs.histogram ~buckets:level_buckets obs "search.worker_batch"
  in
  (* Product pairs (impl state, normal-form node), interned to dense ids;
     per-id state and parent edge live in growable arrays. *)
  let pair_ids = Pair_tbl.create 4096 in
  let pair_impl = ref (Array.make 4096 0) in
  let pair_node = ref (Array.make 4096 0) in
  let parents = ref (Array.make 4096 None) in
  let pair_count = ref 0 in
  let queue = Queue.create () in
  let peak_frontier = ref 0 in
  let busy_us = Atomic.make 0 in
  (* Rolling digest over every interned pair, in interning order — the
     order is byte-identical at any worker count, so the digest is a
     portable fingerprint of search progress. *)
  let digest = ref 0 in
  let intern_pair parent ((impl_i, node) as pair) =
    if not (Pair_tbl.mem pair_ids pair) then begin
      if !pair_count >= max_pairs then raise (Out_of_budget Pairs);
      let id = !pair_count in
      incr pair_count;
      digest := digest_mix (digest_mix !digest impl_i) node;
      if id >= Array.length !parents then begin
        let grow dummy a =
          let bigger = Array.make (2 * id) dummy in
          Array.blit !a 0 bigger 0 id;
          a := bigger
        in
        grow 0 pair_impl;
        grow 0 pair_node;
        grow None parents
      end;
      Pair_tbl.replace pair_ids pair id;
      !pair_impl.(id) <- impl_i;
      !pair_node.(id) <- node;
      !parents.(id) <- parent;
      Queue.add id queue;
      Obs.incr c_interned;
      let frontier = Queue.length queue in
      if frontier > !peak_frontier then peak_frontier := frontier
    end
  in
  (* O(depth): walk the parent chain once, consing. *)
  let trace_to id =
    let rec go acc id =
      match !parents.(id) with
      | None -> acc
      | Some (l, p) -> go (l :: acc) p
    in
    go [] id
  in
  let counterexample pair_id extra violation impl_i =
    {
      trace = visible_trace (trace_to pair_id @ extra);
      violation;
      impl_state = source.term_of impl_i;
    }
  in
  (* Pairs are dequeued in BFS order, so the most recently dequeued pair
     lies on a deepest explored path — the natural resume hint. *)
  let explored = ref 0 in
  let last_dequeued = ref 0 in
  (* Fast-forward state: while [ff] holds the checkpoint being resumed,
     the engine replays the deterministic prefix with the deadline unarmed
     and progress suppressed; [pending_budget] is armed as an absolute
     deadline only once the recorded position is crossed and validated.
     Fresh runs arm [stop_at] immediately and never fast-forward. *)
  let ff = ref resume_from in
  let stop_at_r =
    ref (match resume_from with Some _ -> None | None -> stop_at)
  in
  let pending_budget =
    ref
      (match resume_from with
       | Some cp ->
         (match resume_deadline with
          | Some _ -> resume_deadline
          | None -> cp.deadline_left)
       | None -> None)
  in
  let deadline_left_now () =
    match !stop_at_r with
    | Some limit -> Some (Float.max 0. (limit -. Obs.now ()))
    | None -> !pending_budget
  in
  (* Commit-boundary snapshot: updated after every fully committed pair,
     so a checkpoint taken mid-commit (a pair budget trips while interning
     successors) still describes a state the replay passes through. *)
  let b_explored = ref 0 and b_pairs = ref 0 and b_digest = ref 0 in
  let note_boundary () =
    b_explored := !explored;
    b_pairs := !pair_count;
    b_digest := !digest
  in
  (* Crossing the recorded position of a resumed run: validate that the
     replay reproduced the interrupted search exactly, then arm the
     remaining wall budget. Checked at the head of every commit, where the
     state equals a commit boundary. *)
  let cross_if_resuming () =
    match !ff with
    | Some cp when !explored >= cp.explored ->
      if
        !explored <> cp.explored
        || !pair_count <> cp.pairs
        || !digest <> cp.visited_digest
      then
        raise
          (Resume_mismatch
             (Printf.sprintf
                "checkpoint mismatch at commit %d: recorded %d pairs \
                 (digest %#x), replay has %d pairs (digest %#x) — the \
                 script, assertion, or budgets differ from the \
                 interrupted run"
                cp.explored cp.pairs cp.visited_digest !pair_count !digest));
      ff := None;
      (match !pending_budget with
       | Some budget -> stop_at_r := Some (Obs.now () +. budget)
       | None -> ());
      pending_budget := None
    | _ -> ()
  in
  (* All degradation triggers ride one cadence: every 256 commits the
     engine polls the cancellation token, the heap watermark, and the
     wall clock (each a function call, a counter read, and a syscall
     respectively — nothing per-pair). *)
  let check_budgets () =
    if !explored > 0 && !explored land deadline_poll_mask = 0 then begin
      (match cancel with
       | Some cancelled when cancelled () -> raise (Out_of_budget Interrupt)
       | _ -> ());
      (match memory_limit_mb with
       | Some mb when heap_mb () > float_of_int mb ->
         raise (Out_of_budget Memory)
       | _ -> ());
      match !stop_at_r with
      | Some limit when Obs.now () > limit -> raise (Out_of_budget Deadline)
      | _ -> ()
    end
  in
  (* Progress callbacks and gauge refreshes share the poll cadence; with a
     silent handle and no callback the whole tick is one boolean test per
     dequeue. Both stay quiet while fast-forwarding a resumed prefix. *)
  let ticking = progress <> None || not (Obs.is_silent obs) in
  let tick () =
    if
      ticking && !ff = None && !explored > 0
      && !explored land deadline_poll_mask = 0
    then begin
      let frontier = Queue.length queue in
      let budget_frac = float_of_int !pair_count /. float_of_int max_pairs in
      Obs.set g_frontier (float_of_int frontier);
      Obs.set g_budget budget_frac;
      Obs.set g_impl_states (float_of_int (source.state_count ()));
      match progress with
      | None -> ()
      | Some cb ->
        let elapsed_s = Obs.now () -. t0 in
        cb
          {
            explored = !explored;
            pairs = !pair_count;
            impl_states = source.state_count ();
            frontier;
            elapsed_s;
            rate =
              (if elapsed_s > 0. then float_of_int !explored /. elapsed_s
               else 0.);
            budget_frac;
          }
    end
  in
  let par_speedup wall =
    if workers > 1 && wall > 0. then
      float_of_int (Atomic.get busy_us) /. 1e6 /. wall
    else 1.
  in
  let current_stats () =
    let wall_s = Obs.now () -. t0 in
    make_stats ~wall_s ~peak_frontier:!peak_frontier ~workers
      ~par_speedup:(par_speedup wall_s) ~impl_states:(source.state_count ())
      ~spec_nodes:(Normalise.num_nodes norm) ~pairs:!pair_count ()
  in
  (* Stage 1 (parallel-safe): expand one pair using a worker's private
     stepper. Reads the shared arrays but never writes them. *)
  let expand step impl_i node =
    match source.divergent with
    | Some _ when Normalise.divergent norm node -> X_pruned
    | Some impl_divergent when impl_divergent impl_i -> X_divergent
    | _ ->
      let ts = step impl_i in
      let stable =
        not
          (List.exists
             (fun (l, _) -> match l with Event.Tau -> true | _ -> false)
             ts)
      in
      let refused =
        if refusal <> `None && stable then begin
          let offered = List.sort_uniq Event.compare_label (List.map fst ts) in
          let accs =
            match refusal with
            | `Acceptances -> Normalise.acceptances norm node
            | `Full ->
              [ List.sort_uniq Event.compare_label
                  (List.map fst (Normalise.afters norm node)) ]
            | `None -> []
          in
          let covered =
            List.exists
              (fun acc -> List.for_all (fun l -> List.mem l offered) acc)
              accs
          in
          if covered then None else Some (offered, accs)
        end
        else None
      in
      (match refused with
       | Some (offered, accs) -> X_refusal (offered, accs)
       | None ->
         X_edges
           (List.map
              (fun (l, target) ->
                match l with
                | Event.Tau -> E_step (l, target, node)
                | Event.Tick | Event.Vis _ ->
                  (match Normalise.after norm node l with
                   | Some node' -> E_step (l, target, node')
                   | None -> E_trace_violation l))
              ts))
  in
  (* Ample-set selection, evaluated in the commit phase so the choice is
     made in deterministic merge order and the proviso can consult pair
     ids (FIFO interning order = dequeue order). A group G of state [s]'s
     transitions qualifies as ample when:
     - every edge of [s] is a plain step (no trace violation, no tick):
       otherwise the violation must be found / the spec must move;
     - the state's transitions split into >= 2 component groups that
       cover them all (so G is a proper subset);
     - every label of G is invisible to the specification (Tau, or
       self-looping at every normal-form node), hence firing G keeps the
       spec node and cannot mask or create a violation;
     - cycle proviso: some successor of G is not yet closed (not interned,
       or interned with a pair id greater than the committing pair's, i.e.
       still queued) — deferring the other groups along a cycle of
       already-closed states would postpone them forever. *)
  let c_ample = Obs.counter obs "search.por_ample_commits" in
  let ample p pair_id node edges =
    let plain_step = function
      | E_step ((Event.Tau | Event.Vis _), _, _) -> true
      | E_step (Event.Tick, _, _) | E_trace_violation _ -> false
    in
    if not (List.for_all plain_step edges) then None
    else
      match p.por_groups !pair_impl.(pair_id) with
      | [] | [ _ ] -> None
      | groups ->
        let total =
          List.fold_left (fun acc g -> acc + List.length g) 0 groups
        in
        if total <> List.length edges then None
        else
          let qualifies g =
            g <> []
            && List.for_all (fun (l, _) -> p.por_spec_free l) g
            && List.exists
                 (fun (_, j) ->
                   match Pair_tbl.find_opt pair_ids (j, node) with
                   | None -> true
                   | Some id -> id > pair_id)
                 g
          in
          List.find_opt qualifies groups
  in
  (* Stage 2 (merge, single domain): commit one pair's expansion in
     frontier order. [Some result] short-circuits the search. *)
  let rec commit pair_id expansion =
    last_dequeued := pair_id;
    incr explored;
    Obs.incr c_explored;
    let impl_i = !pair_impl.(pair_id) in
    match expansion with
    | X_pruned -> None
    | X_divergent -> Some (Fails (counterexample pair_id [] Divergence impl_i))
    | X_refusal (offered, acceptances) ->
      Some
        (Fails
           (counterexample pair_id []
              (Refusal_violation { offered; acceptances })
              impl_i))
    | X_error e -> raise e
    | X_edges edges ->
      let node = !pair_node.(pair_id) in
      let chosen =
        match por with
        | Some p when refusal = `None && source.divergent = None ->
          ample p pair_id node edges
        | _ -> None
      in
      (match chosen with
       | Some group ->
         (* Every label of an ample group leaves the spec node in place
            (Tau, or a label the spec self-loops on everywhere). *)
         Obs.incr c_ample;
         List.iter
           (fun (l, j) ->
             intern_pair (Some (l, pair_id))
               (source.intern (Raw_state j), node))
           group;
         None
       | None -> commit_edges pair_id edges impl_i)
  and commit_edges pair_id edges impl_i =
      (* Intern every successor state first, then scan for violations
         while interning pairs: the same order as a sequential stepper
         that interns its whole result list before the scan. *)
      let interned =
        List.map
          (fun edge ->
            match edge with
            | E_step (l, target, node') -> `Step (l, source.intern target, node')
            | E_trace_violation l -> `Violation l)
          edges
      in
      List.find_map
        (fun step ->
          match step with
          | `Step (l, target_i, node') ->
            intern_pair (Some (l, pair_id)) (target_i, node');
            None
          | `Violation l ->
            Some
              (Fails (counterexample pair_id [ l ] (Trace_violation l) impl_i)))
        interned
  in
  intern_pair None (source.initial, Normalise.initial norm);
  note_boundary ();
  (* Sequential engine: one stepper, expand-and-commit per dequeue. *)
  let run_sequential () =
    let step = source.raw_step () in
    let rec search () =
      (* an empty queue is a completed search: the verdict stands even if
         the deadline expired while reaching it *)
      if Queue.is_empty queue then Holds (current_stats ())
      else begin
        cross_if_resuming ();
        tick ();
        check_budgets ();
        match Queue.take_opt queue with
        | None -> Holds (current_stats ())
        | Some pair_id ->
          let expansion =
            expand step !pair_impl.(pair_id) !pair_node.(pair_id)
          in
          (match commit pair_id expansion with
           | Some result -> result
           | None ->
             note_boundary ();
             search ())
      end
    in
    search ()
  in
  (* Parallel engine: the queue is drained level-synchronously. Workers
     expand the snapshot of the current frontier into position-indexed
     slots; the merge then replays the slots in frontier order, so
     verdicts, counterexample traces, and state/pair counts are
     byte-identical to the sequential engine (only wall-clock differs).
     Work discovered during the merge forms the next level. *)
  let run_parallel pool =
    (* A loop (not merge-tail-calls-level recursion) so each BFS level can
       be wrapped in an [Obs.span] without the span body capturing the
       rest of the search. *)
    let verdict = ref None in
    while !verdict = None do
      if Queue.is_empty queue then verdict := Some (Holds (current_stats ()))
      else
        Obs.span obs "search.level" (fun () ->
            let frontier = Array.of_seq (Queue.to_seq queue) in
            let n = Array.length frontier in
            Obs.observe h_level (float_of_int n);
            let results = Array.make n X_pruned in
            let next = Atomic.make 0 in
            Pool.run pool (fun step ->
                let t_start = Obs.now () in
                let grabbed = ref 0 in
                let rec grab () =
                  let k = Atomic.fetch_and_add next 1 in
                  if k < n then begin
                    incr grabbed;
                    let pair_id = frontier.(k) in
                    results.(k) <-
                      (try
                         expand step !pair_impl.(pair_id) !pair_node.(pair_id)
                       with e -> X_error e);
                    grab ()
                  end
                in
                grab ();
                let spent = Obs.now () -. t_start in
                Obs.add c_worker_items !grabbed;
                Obs.observe h_batch (float_of_int !grabbed);
                ignore
                  (Atomic.fetch_and_add busy_us (int_of_float (spent *. 1e6))));
            let rec merge k =
              if k >= n then ()
              else begin
                cross_if_resuming ();
                tick ();
                check_budgets ();
                let pair_id = Queue.take queue in
                match commit pair_id results.(k) with
                | Some result -> verdict := Some result
                | None ->
                  note_boundary ();
                  merge (k + 1)
              end
            in
            merge 0)
    done;
    Option.get !verdict
  in
  let run () =
    if workers = 1 then run_sequential ()
    else begin
      let pool = Pool.create ~init:source.raw_step workers in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
          run_parallel pool)
    end
  in
  try
    let result = Obs.span obs "search.product" run in
    (* A terminal verdict while still fast-forwarding means the replay ran
       out of states before the recorded position — the checkpoint cannot
       belong to this search. Refuse rather than return the wrong model's
       verdict. *)
    (match !ff with
     | Some cp ->
       raise
         (Resume_mismatch
            (Printf.sprintf
               "search exhausted after %d commits without reaching the \
                recorded position (commit %d) — the checkpoint belongs to \
                a different script or assertion"
               !explored cp.explored))
     | None -> ());
    result
  with Out_of_budget kind ->
    (* A [Pairs] exhaustion is raised on the pair that failed to intern;
       it is discovered-but-unexplored work, so it counts as frontier. *)
    let frontier =
      Queue.length queue + (match kind with Pairs -> 1 | _ -> 0)
    in
    let cp : checkpoint =
      {
        explored = !b_explored;
        pairs = !b_pairs;
        impl_states = source.state_count ();
        visited_digest = !b_digest;
        deadline_left = deadline_left_now ();
        exhausted = kind;
        pipeline;
      }
    in
    Inconclusive
      ( current_stats (),
        {
          frontier;
          deepest = visible_trace (trace_to !last_dequeued);
          exhausted = kind;
          checkpoint = (if !b_pairs >= 1 then Some cp else None);
        } )
