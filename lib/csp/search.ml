type violation =
  | Trace_violation of Event.label
  | Refusal_violation of {
      offered : Event.label list;
      acceptances : Event.label list list;
    }
  | Deadlock
  | Divergence

type counterexample = {
  trace : Event.label list;
  violation : violation;
  impl_state : Proc.t;
}

type stats = {
  impl_states : int;
  spec_nodes : int;
  pairs : int;
  wall_s : float;
  states_per_sec : float;
  peak_frontier : int;
}

type budget_kind =
  | Deadline
  | States
  | Pairs

type resume_hint = {
  frontier : int;
  deepest : Event.label list;
  exhausted : budget_kind;
}

type result =
  | Holds of stats
  | Fails of counterexample
  | Inconclusive of stats * resume_hint

type refusal = [ `None | `Acceptances | `Full ]

type source = {
  initial : int;
  step : int -> (Event.label * int) list;
  term_of : int -> Proc.t;
  state_count : unit -> int;
  divergent : (int -> bool) option;
}

type interner = [ `Id | `Structural ]

(* Internal: unwound to an [Inconclusive] verdict at the end of [product],
   where the current counters and frontier are in scope. *)
exception Out_of_budget of budget_kind

let visible_trace labels =
  List.filter
    (fun l -> match l with Event.Vis _ | Event.Tick -> true | Event.Tau -> false)
    labels

let per_sec states wall = if wall > 0. then float_of_int states /. wall else 0.

let make_stats ?(wall_s = 0.) ?(peak_frontier = 0) ~impl_states ~spec_nodes
    ~pairs () =
  {
    impl_states;
    spec_nodes;
    pairs;
    wall_s;
    states_per_sec = per_sec (max impl_states pairs) wall_s;
    peak_frontier;
  }

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

module Id_tbl = Hashtbl.Make (struct
  type t = Proc.t

  let equal = Proc.equal
  let hash = Proc.hash
end)

module Structural_tbl = Hashtbl.Make (struct
  type t = Proc.t

  let equal = Proc.structural_equal
  let hash = Proc.structural_hash
end)

(* One polymorphic face over the two intern-table functors, so the
   interning scheme is selectable at runtime (the structural scheme is the
   oracle the hash-consed one is tested against). *)
let proc_interner = function
  | `Id ->
    let tbl = Id_tbl.create 1024 in
    (Id_tbl.find_opt tbl : Proc.t -> int option), Id_tbl.replace tbl
  | `Structural ->
    let tbl = Structural_tbl.create 1024 in
    (Structural_tbl.find_opt tbl, Structural_tbl.replace tbl)

let proc_source ?(interner = `Id) ~step term0 =
  let find_opt, replace = proc_interner interner in
  let terms = ref (Array.make 1024 term0) in
  let count = ref 0 in
  let intern term =
    match find_opt term with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      if i >= Array.length !terms then begin
        let bigger = Array.make (2 * i) term0 in
        Array.blit !terms 0 bigger 0 i;
        terms := bigger
      end;
      !terms.(i) <- term;
      replace term i;
      i
  in
  let initial = intern term0 in
  {
    initial;
    step = (fun i -> List.map (fun (l, t) -> l, intern t) (step !terms.(i)));
    term_of = (fun i -> !terms.(i));
    state_count = (fun () -> !count);
    divergent = None;
  }

let lts_source ?(check_divergence = true) lts =
  let divergent =
    if check_divergence then begin
      let bits = Array.make (max 1 (Lts.num_states lts)) false in
      List.iter (fun i -> bits.(i) <- true) (Lts.divergences lts);
      Some (fun i -> bits.(i))
    end
    else None
  in
  {
    initial = lts.Lts.initial;
    step = Lts.transitions_of lts;
    term_of = Lts.state_term lts;
    state_count = (fun () -> Lts.num_states lts);
    divergent;
  }

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

module Pair_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end)

let product ~refusal ~max_pairs ?stop_at ~norm source =
  let t0 = Unix.gettimeofday () in
  (* Product pairs (impl state, normal-form node), interned to dense ids;
     per-id state and parent edge live in growable arrays. *)
  let pair_ids = Pair_tbl.create 4096 in
  let pair_impl = ref (Array.make 4096 0) in
  let pair_node = ref (Array.make 4096 0) in
  let parents = ref (Array.make 4096 None) in
  let pair_count = ref 0 in
  let queue = Queue.create () in
  let peak_frontier = ref 0 in
  let intern_pair parent ((impl_i, node) as pair) =
    if not (Pair_tbl.mem pair_ids pair) then begin
      if !pair_count >= max_pairs then raise (Out_of_budget Pairs);
      let id = !pair_count in
      incr pair_count;
      if id >= Array.length !parents then begin
        let grow dummy a =
          let bigger = Array.make (2 * id) dummy in
          Array.blit !a 0 bigger 0 id;
          a := bigger
        in
        grow 0 pair_impl;
        grow 0 pair_node;
        grow None parents
      end;
      Pair_tbl.replace pair_ids pair id;
      !pair_impl.(id) <- impl_i;
      !pair_node.(id) <- node;
      !parents.(id) <- parent;
      Queue.add id queue;
      let frontier = Queue.length queue in
      if frontier > !peak_frontier then peak_frontier := frontier
    end
  in
  (* O(depth): walk the parent chain once, consing. *)
  let trace_to id =
    let rec go acc id =
      match !parents.(id) with
      | None -> acc
      | Some (l, p) -> go (l :: acc) p
    in
    go [] id
  in
  let counterexample pair_id extra violation impl_i =
    {
      trace = visible_trace (trace_to pair_id @ extra);
      violation;
      impl_state = source.term_of impl_i;
    }
  in
  (* Pairs are dequeued in BFS order, so the most recently dequeued pair
     lies on a deepest explored path — the natural resume hint. *)
  let explored = ref 0 in
  let last_dequeued = ref 0 in
  let over_deadline () =
    match stop_at with
    | Some limit -> !explored > 0 && Unix.gettimeofday () > limit
    | None -> false
  in
  let current_stats () =
    make_stats
      ~wall_s:(Unix.gettimeofday () -. t0)
      ~peak_frontier:!peak_frontier ~impl_states:(source.state_count ())
      ~spec_nodes:(Normalise.num_nodes norm) ~pairs:!pair_count ()
  in
  intern_pair None (source.initial, Normalise.initial norm);
  let rec search () =
    (* an empty queue is a completed search: the verdict stands even if
       the deadline expired while reaching it *)
    if Queue.is_empty queue then Holds (current_stats ())
    else if over_deadline () then raise (Out_of_budget Deadline)
    else
      match Queue.take_opt queue with
      | None -> Holds (current_stats ())
      | Some pair_id ->
        last_dequeued := pair_id;
        incr explored;
        let impl_i = !pair_impl.(pair_id)
        and node = !pair_node.(pair_id) in
        (match source.divergent with
         | Some impl_divergent ->
           (* Under a divergent specification node everything is allowed,
              so that subtree is pruned; a divergent implementation state
              under a non-divergent node is a violation. *)
           if Normalise.divergent norm node then search ()
           else if impl_divergent impl_i then
             Fails (counterexample pair_id [] Divergence impl_i)
           else explore pair_id impl_i node
         | None -> explore pair_id impl_i node)
  and explore pair_id impl_i node =
    let ts = source.step impl_i in
    let stable =
      not
        (List.exists
           (fun (l, _) -> match l with Event.Tau -> true | _ -> false)
           ts)
    in
    let refusal_failure =
      if refusal <> `None && stable then begin
        let offered = List.sort_uniq Event.compare_label (List.map fst ts) in
        let accs =
          match refusal with
          | `Acceptances -> Normalise.acceptances norm node
          | `Full ->
            [ List.sort_uniq Event.compare_label
                (List.map fst (Normalise.afters norm node)) ]
          | `None -> []
        in
        let covered =
          List.exists
            (fun acc -> List.for_all (fun l -> List.mem l offered) acc)
            accs
        in
        if covered then None
        else
          Some
            (counterexample pair_id []
               (Refusal_violation { offered; acceptances = accs })
               impl_i)
      end
      else None
    in
    match refusal_failure with
    | Some cex -> Fails cex
    | None ->
      let violation =
        List.find_map
          (fun (l, target) ->
            match l with
            | Event.Tau ->
              intern_pair (Some (l, pair_id)) (target, node);
              None
            | Event.Tick | Event.Vis _ ->
              (match Normalise.after norm node l with
               | Some node' ->
                 intern_pair (Some (l, pair_id)) (target, node');
                 None
               | None ->
                 Some (counterexample pair_id [ l ] (Trace_violation l) impl_i)))
          ts
      in
      (match violation with
       | Some cex -> Fails cex
       | None -> search ())
  in
  try search ()
  with Out_of_budget kind ->
    (* A [Pairs] exhaustion is raised on the pair that failed to intern;
       it is discovered-but-unexplored work, so it counts as frontier. *)
    let frontier =
      Queue.length queue + (match kind with Pairs -> 1 | _ -> 0)
    in
    Inconclusive
      ( current_stats (),
        {
          frontier;
          deepest = visible_trace (trace_to !last_dequeued);
          exhausted = kind;
        } )
