(** Content-addressed cache of compiled, normalised, and reduced LTSs —
    the incremental-re-checking backbone of the daemon (ROADMAP item 3).

    Keys are hex digests over the elaborated process term, the transitive
    closure of the definitions it can reach, every global declaration, and
    a fingerprint of the compilation parameters (state budget; for reduced
    graphs also the model, the reduction pipeline, and the specification
    digest, because the dead-event pass is computed against the spec's
    normal-form alphabet). Editing one handler therefore invalidates only
    the components that can reach it; everything else is a digest hit.

    All digest/fingerprint construction for cached artifacts lives here —
    [tools/lint.ml] keeps [Digest] out of the rest of [lib/] so producers
    and consumers cannot drift apart.

    The store is thread-safe (one mutex; the daemon shares a cache across
    jobs while assertions run on concurrent domains) and bounded by
    resident implementation states with LRU eviction. An optional
    persistence hook spills entries to a directory through an injected
    atomic writer (e.g. [Serve.Fsio]) and reloads them in later processes;
    marshalled terms are re-admitted through the hash-consing smart
    constructors on load, so physical-equality invariants hold. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  resident_states : int;  (** summed [Lts.num_states] of live entries *)
  resident_entries : int;
}

(** Where and how entries are spilled to disk. [write ~path payload] must
    be atomic (temp + rename) and durable; the cache treats write failures
    as non-fatal and unreadable/foreign files as misses. *)
type persistence = {
  dir : string;
  write : path:string -> string -> unit;
}

type value =
  | Lts_graph of Lts.t  (** a compiled implementation graph *)
  | Norm_spec of Lts.t * Normalise.t
      (** a compiled specification graph with its normal form *)
  | Reduced of Lts.t * Reduce.pass_stat list
      (** an implementation graph after the graph passes of a pipeline *)

val create :
  ?obs:Obs.t ->
  ?persist:persistence ->
  ?max_resident_states:int ->
  unit ->
  t
(** A fresh cache. [max_resident_states] (default [4_000_000]) bounds the
    summed state count of in-memory entries; least-recently-used entries
    are evicted past it. [obs] receives
    [serve.cache_{hits,misses,evictions,resident_states}]. *)

val stats : t -> stats

val json_of_stats : stats -> Obs.Json.t
(** The [cache] object of the [cspm-check/1] / [cspm-checkd/1] schemas. *)

(** {1 Keys}

    Only [Complete] compilation results may be stored under these keys:
    a [Partial] graph depends on the deadline/cancel state of the run that
    produced it and is not content-addressed. *)

val digest_term : Defs.t -> Proc.t -> string
(** The raw content digest of a term under an environment: global
    declarations + domain limit + reachable definition closure + the term
    itself. Building block of the keys below; exposed for tests and for
    incremental-invalidation diagnostics. *)

val script_digest : string -> string
(** Digest of raw script source (daemon job identity, not LTS keying). *)

val spec_key : max_states:int -> Defs.t -> Proc.t -> string
(** Key of a specification compiled with [Lts.compile_budgeted] and
    normalised ([Norm_spec]). *)

val impl_key : max_states:int -> Defs.t -> Proc.t -> string
(** Key of an implementation compiled with [Reduce.compile_staged]
    ([Lts_graph]). Distinct namespace from {!lts_key}: staged and raw
    compilation produce cosmetically different state terms. *)

val lts_key : max_states:int -> Defs.t -> Proc.t -> string
(** Key of a graph compiled with [Lts.compile_budgeted] ([Lts_graph]). *)

val reduced_key :
  model:[ `Traces | `Failures | `Fd ] ->
  pipeline:Reduce.pipeline ->
  spec:string ->
  impl:string ->
  string
(** Key of a reduced implementation graph ([Reduced]). [spec]/[impl] are
    the component keys from {!spec_key}/{!impl_key}; the pipeline must be
    the [Reduce.effective] one. *)

(** {1 Store} *)

val find : t -> string -> value option
(** Memory first, then the persistence directory (re-admitting the entry
    to memory). Counts one hit or one miss. *)

val add : t -> string -> value -> unit
(** Insert (first writer wins on a race; later identical inserts are
    no-ops) and spill to the persistence directory if configured. *)

(** {1 Marshalling helpers} *)

val reintern_proc : Proc.t -> Proc.t
(** Rebuild a term that lost hash-consing identity (e.g. through
    [Marshal]) bottom-up through the smart constructors, preserving
    internal sharing. Exposed for tests. *)
