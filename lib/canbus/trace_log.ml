type direction =
  | Tx
  | Rx of string
  | Fault of string

type entry = {
  time : int;
  node : string;
  direction : direction;
  frame : Frame.t;
}

type t = { mutable entries : entry list (* reverse chronological *) }

let create () = { entries = [] }
let record t entry = t.entries <- entry :: t.entries
let entries t = List.rev t.entries

let transmissions t =
  List.filter (fun e -> e.direction = Tx) (entries t)

let faults t =
  List.filter
    (fun e -> match e.direction with Fault _ -> true | _ -> false)
    (entries t)

let length t = List.length t.entries
let clear t = t.entries <- []

let pp_entry ppf e =
  let dir =
    match e.direction with
    | Tx -> "tx"
    | Rx receiver -> "rx->" ^ receiver
    | Fault kind -> "fault:" ^ kind
  in
  Format.fprintf ppf "%8d us  %-10s %-12s %a" e.time e.node dir Frame.pp
    e.frame

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    pp_entry ppf (entries t)
