type direction =
  | Tx
  | Rx of string
  | Fault of string

type entry = {
  time : int;
  node : string;
  direction : direction;
  frame : Frame.t;
}

(* Dynamic array, chronological order. The previous representation was a
   reverse-chronological list, which forced [entries] (an O(n) reversal
   plus a second O(n) list) onto every consumer; corpora of millions of
   entries want in-order streaming without materialisation. *)
type t = {
  mutable store : entry array;
  mutable len : int;
}

let dummy =
  { time = 0; node = ""; direction = Tx; frame = Frame.make ~id:0 [] }

let create () = { store = [||]; len = 0 }

let record t entry =
  let cap = Array.length t.store in
  if t.len = cap then begin
    let store = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.store 0 store 0 t.len;
    t.store <- store
  end;
  t.store.(t.len) <- entry;
  t.len <- t.len + 1

let length t = t.len

let clear t =
  t.store <- [||];
  t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.store.(i)
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let entries t = List.rev (fold t ~init:[] (fun acc e -> e :: acc))

let transmissions t =
  List.rev
    (fold t ~init:[] (fun acc e ->
         if e.direction = Tx then e :: acc else acc))

let faults t =
  List.rev
    (fold t ~init:[] (fun acc e ->
         match e.direction with Fault _ -> e :: acc | _ -> acc))

let pp_entry ppf e =
  let dir =
    match e.direction with
    | Tx -> "tx"
    | Rx receiver -> "rx->" ^ receiver
    | Fault kind -> "fault:" ^ kind
  in
  Format.fprintf ppf "%8d us  %-10s %-12s %a" e.time e.node dir Frame.pp
    e.frame

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    pp_entry ppf (entries t)

(* can-trace/1 codec.

   One entry per JSON object, compact keys, fixed field order so a
   decode/encode round trip is byte-identical:
     {"t":<us>,"n":<node>,"d":"tx"|"rx:<node>"|"fault:<kind>",
      "id":<can id>,["ext":true,]"data":[<bytes>]}
   ["ext"] is present only for extended-format frames; ["data"] always
   carries exactly [dlc] bytes. *)

let schema = "can-trace/1"

let string_of_direction = function
  | Tx -> "tx"
  | Rx receiver -> "rx:" ^ receiver
  | Fault kind -> "fault:" ^ kind

let direction_of_string s =
  let tagged prefix =
    let lp = String.length prefix in
    if
      String.length s >= lp && String.sub s 0 lp = prefix
    then Some (String.sub s lp (String.length s - lp))
    else None
  in
  if s = "tx" then Ok Tx
  else
    match tagged "rx:" with
    | Some receiver -> Ok (Rx receiver)
    | None -> (
      match tagged "fault:" with
      | Some kind -> Ok (Fault kind)
      | None -> Error (Printf.sprintf "unknown direction %S" s))

let entry_to_json e =
  let open Obs.Json in
  let data =
    List (Array.to_list (Array.map (fun b -> Num (float_of_int b)) e.frame.Frame.data))
  in
  let fields =
    [
      ("t", Num (float_of_int e.time));
      ("n", Str e.node);
      ("d", Str (string_of_direction e.direction));
      ("id", Num (float_of_int e.frame.Frame.id));
    ]
    @ (if e.frame.Frame.extended then [ ("ext", Bool true) ] else [])
    @ [ ("data", data) ]
  in
  Obj fields

let entry_of_json json =
  let open Obs.Json in
  let field name conv =
    match Option.bind (member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let ( let* ) = Result.bind in
  let* time = field "t" to_int in
  let* node = field "n" to_str in
  let* dir_s = field "d" to_str in
  let* direction = direction_of_string dir_s in
  let* id = field "id" to_int in
  let extended =
    match member "ext" json with Some (Bool b) -> b | _ -> false
  in
  let* bytes =
    match member "data" json with
    | Some (List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match to_int item with
          | Some b -> Ok (b :: acc)
          | None -> Error "non-integer data byte")
        (Ok []) items
      |> Result.map List.rev
    | _ -> Error "missing or ill-typed field \"data\""
  in
  if time < 0 then Error "negative timestamp"
  else
    match Frame.make ~extended ~id bytes with
    | frame -> Ok { time; node; direction; frame }
    | exception Frame.Invalid_frame reason -> Error reason
