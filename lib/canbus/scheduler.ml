type handle = int

(* Priority queue as a map from (time, sequence) to actions; small enough
   simulations do not justify a binary heap. *)
module Key = struct
  type t = int * int  (* time, sequence *)
  let compare (t1, s1) (t2, s2) =
    let r = Int.compare t1 t2 in
    if r <> 0 then r else Int.compare s1 s2
end

module Queue_map = Map.Make (Key)

type t = {
  mutable now : int;
  mutable seq : int;
  mutable queue : (handle * (unit -> unit)) Queue_map.t;
  mutable cancelled : int list;
  mutable next_handle : int;
}

let create () =
  { now = 0; seq = 0; queue = Queue_map.empty; cancelled = []; next_handle = 0 }

let now t = t.now

let at t time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Scheduler.at: time %d is before now (%d)" time t.now);
  let handle = t.next_handle in
  t.next_handle <- t.next_handle + 1;
  t.queue <- Queue_map.add (time, t.seq) (handle, action) t.queue;
  t.seq <- t.seq + 1;
  handle

let after t delay action = at t (t.now + delay) action

let cancel t handle = t.cancelled <- handle :: t.cancelled

let pending t =
  Queue_map.fold
    (fun _ (h, _) acc -> if List.mem h t.cancelled then acc else acc + 1)
    t.queue 0

let step t =
  let rec pop () =
    match Queue_map.min_binding_opt t.queue with
    | None -> false
    | Some ((time, _seq) as key, (handle, action)) ->
      t.queue <- Queue_map.remove key t.queue;
      if List.mem handle t.cancelled then begin
        t.cancelled <- List.filter (fun h -> h <> handle) t.cancelled;
        pop ()
      end
      else begin
        t.now <- time;
        action ();
        true
      end
  in
  pop ()

let run ?until ?(max_events = 1_000_000) t =
  let fired = ref 0 in
  let continue () =
    if !fired >= max_events then false
    else
      match Queue_map.min_binding_opt t.queue with
      | None -> false
      | Some ((time, _), _) ->
        (match until with
         | Some limit when time > limit -> false
         | _ -> true)
  in
  while continue () do
    if step t then incr fired
  done;
  !fired
