(** Deterministic fault injection and CAN error confinement.

    A {!plan} describes a randomised fault mix — frame drops, bit
    corruption, delivery delay, duplication and an optional babbling-idiot
    node — driven by a seed-split PRNG: each fault kind draws from its own
    stream, all derived from the one seed, so a given plan on a given
    scenario is reproducible bit-for-bit (byte-identical {!Trace_log}
    output across runs).

    Installing a plan also arms the CAN error-confinement state machine
    (ISO 11898-1): every node carries transmit/receive error counters
    (TEC/REC); a destroyed frame costs its transmitter TEC +8 and is
    automatically retransmitted within a bounded retry budget; a
    successful transmission earns TEC −1. Nodes degrade from error-active
    through error-passive to bus-off, at which point they neither transmit
    (frames are discarded at the transmit gate) nor receive anything.

    Every injected fault and confinement transition is recorded in the
    bus's {!Trace_log} as a [Fault] entry. *)

(** Deterministic splitmix64 generator (exposed for tests and for seeding
    scenario-level randomness from the same master seed). *)
module Rng : sig
  type t

  val make : int -> t
  val split : t -> t
  (** An independent stream derived from (and advancing) the parent. *)

  val float : t -> float
  (** Uniform in [\[0, 1)]. *)

  val int : t -> int -> int
  (** Uniform in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)
end

type babble

val babble : ?id:int -> ?period_us:int -> ?count:int -> unit -> babble
(** A babbling-idiot node: transmits a frame with identifier [id]
    (default [0] — top priority, the classic starvation attack) every
    [period_us] (default 1000) up to [count] times (default 100). *)

type plan = private {
  seed : int;
  drop : float;  (** probability a frame is destroyed on the wire *)
  corrupt : float;  (** probability a surviving frame is bit-flipped *)
  delay : float;  (** probability a surviving frame is delayed *)
  delay_us : int;  (** added latency for delayed frames *)
  duplicate : float;  (** probability a surviving frame arrives twice *)
  only : string option;  (** restrict faults to this transmitter's frames *)
  babble : babble option;
}

val plan :
  ?seed:int ->
  ?drop:float ->
  ?corrupt:float ->
  ?delay:float ->
  ?delay_us:int ->
  ?duplicate:float ->
  ?only:string ->
  ?babble:babble ->
  unit ->
  plan
(** All probabilities default to [0.]; [delay_us] to [200]; [seed] to [0].
    @raise Invalid_argument if a probability is outside [\[0, 1]]. *)

type t
(** An installed fault layer. *)

val install :
  ?max_retries:int -> ?tec_passive:int -> ?tec_busoff:int -> Bus.t -> plan -> t
(** Interpose the plan on the bus (replacing any hooks already present)
    and start the babbler if configured. [max_retries] bounds automatic
    retransmission per frame (default 3); [tec_passive] and [tec_busoff]
    are the error-confinement thresholds (defaults 128 and 256, per the
    CAN standard — tests may lower them to reach bus-off quickly). *)

val uninstall : t -> unit
(** Remove the hooks and stop the babbler. Error counters are retained
    for post-mortem inspection. *)

type node_state =
  | Error_active  (** normal operation *)
  | Error_passive  (** high error count: a real controller throttles *)
  | Bus_off  (** disconnected: transmits nothing, receives nothing *)

val tec : t -> Bus.node_id -> int
val rec_count : t -> Bus.node_id -> int
val node_state : t -> Bus.node_id -> node_state

type stats = {
  drops : int;
  corruptions : int;
  delays : int;
  duplicates : int;
  retransmissions : int;
  abandoned : int;  (** frames whose retry budget ran out *)
  bus_off_blocked : int;  (** transmissions discarded at the gate *)
  babbled : int;
}

val stats : t -> stats

val pp_node_state : Format.formatter -> node_state -> unit
val pp_stats : Format.formatter -> stats -> unit
