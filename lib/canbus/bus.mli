(** The shared CAN bus: arbitration, transmission timing and delivery.

    Transmission model: a node's [transmit] enqueues the frame; when the
    bus is idle, the pending frame with the lowest identifier wins
    arbitration (CAN's bitwise-dominant arbitration collapses to priority
    order in a discrete-event model), occupies the bus for its nominal
    duration at the configured bitrate, and is then delivered to every
    attached node except the transmitter. *)

type t

type node_id

val create : ?bitrate:int -> Scheduler.t -> t
(** [bitrate] in bits/s (default 500_000 — a typical automotive CAN). *)

val scheduler : t -> Scheduler.t
val log : t -> Trace_log.t

val attach : t -> name:string -> rx:(Frame.t -> unit) -> node_id
(** Attach a node; [rx] fires (in attachment order) for every frame
    transmitted by any other node. *)

val node_name : t -> node_id -> string

val node_ids : t -> node_id list
(** All attached nodes, in attachment order. *)

val transmit : t -> node_id -> Frame.t -> unit
(** Queue a frame for arbitration. Multiple frames queued by one node keep
    their order relative to each other. A transmit gate (see
    {!set_tx_gate}) may silently discard the frame instead. *)

val pending_frames : t -> int
(** Frames queued or in flight. *)

(** {2 Interposition hooks}

    Entry points for the fault-injection layer ({!Fault}): all default to
    absent, in which case the bus behaves as the ideal channel described
    above. Installing a hook replaces any previous one. *)

type delivery = {
  delay : int;  (** microseconds after the nominal completion time *)
  frame : Frame.t;  (** what arrives (possibly mutated) *)
}

val set_tx_gate : t -> (node_id -> Frame.t -> bool) option -> unit
(** Consulted by {!transmit}; returning [false] discards the frame before
    it ever reaches arbitration (a bus-off transmitter). *)

val set_wire_hook : t -> (src:node_id -> Frame.t -> delivery list) option -> unit
(** Consulted once per completed transmission, after the [Tx] log entry is
    recorded: the returned deliveries replace the frame's nominal arrival.
    [[]] models a frame destroyed on the wire; multiple entries model
    duplication. *)

val set_rx_gate : t -> (node_id -> bool) option -> unit
(** Consulted per receiver per delivery; returning [false] suppresses
    reception for that node (a bus-off receiver hears nothing). *)

val record_fault : t -> node:string -> kind:string -> Frame.t -> unit
(** Append a [Trace_log.Fault] entry at the current simulation time,
    attributed to [node]. *)
