(** The shared CAN bus: arbitration, transmission timing and delivery.

    Transmission model: a node's [transmit] enqueues the frame; when the
    bus is idle, the pending frame with the lowest identifier wins
    arbitration (CAN's bitwise-dominant arbitration collapses to priority
    order in a discrete-event model), occupies the bus for its nominal
    duration at the configured bitrate, and is then delivered to every
    attached node except the transmitter. *)

type t

type node_id

val create : ?bitrate:int -> Scheduler.t -> t
(** [bitrate] in bits/s (default 500_000 — a typical automotive CAN). *)

val scheduler : t -> Scheduler.t
val log : t -> Trace_log.t

val attach : t -> name:string -> rx:(Frame.t -> unit) -> node_id
(** Attach a node; [rx] fires (in attachment order) for every frame
    transmitted by any other node. *)

val node_name : t -> node_id -> string

val transmit : t -> node_id -> Frame.t -> unit
(** Queue a frame for arbitration. Multiple frames queued by one node keep
    their order relative to each other. *)

val pending_frames : t -> int
(** Frames queued or in flight. *)
