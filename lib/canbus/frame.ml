type t = {
  id : int;
  extended : bool;
  dlc : int;
  data : int array;
}

exception Invalid_frame of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_frame s)) fmt

let max_standard_id = 0x7FF
let max_extended_id = 0x1FFF_FFFF

let make ?(extended = false) ~id bytes =
  let max_id = if extended then max_extended_id else max_standard_id in
  if id < 0 || id > max_id then fail "identifier 0x%X out of range" id;
  let dlc = List.length bytes in
  if dlc > 8 then fail "frame carries %d bytes (max 8)" dlc;
  List.iter
    (fun b -> if b < 0 || b > 255 then fail "data byte %d out of range" b)
    bytes;
  { id; extended; dlc; data = Array.of_list bytes }

let data_byte f i =
  if i < 0 then fail "negative data index %d" i
  else if i < f.dlc then f.data.(i)
  else 0

let set_data_byte f i b =
  if i < 0 || i > 7 then fail "data index %d out of range" i;
  if b < 0 || b > 255 then fail "data byte %d out of range" b;
  let dlc = max f.dlc (i + 1) in
  let data = Array.make dlc 0 in
  Array.blit f.data 0 data 0 f.dlc;
  data.(i) <- b;
  { f with dlc; data }

let bit_length f =
  let overhead = if f.extended then 64 else 44 in
  overhead + (8 * f.dlc)

let equal f1 f2 =
  f1.id = f2.id && f1.extended = f2.extended && f1.dlc = f2.dlc
  && Array.for_all2 ( = ) f1.data f2.data

let compare_priority f1 f2 =
  let r = compare f1.id f2.id in
  if r <> 0 then r else compare f1.extended f2.extended

let pp ppf f =
  Format.fprintf ppf "0x%03X [%d]" f.id f.dlc;
  Array.iter (fun b -> Format.fprintf ppf " %02X" b) f.data

let to_string f = Format.asprintf "%a" pp f
