(** A programmable bus node: the simulation-side stand-in for an ECU.

    Handlers are registered after creation (so nodes can refer to each
    other's frames); [start] fires the start handlers, after which received
    frames and timers drive the node. This is the execution substrate the
    CAPL interpreter plugs into. *)

type t

val create : Bus.t -> name:string -> t
val name : t -> string
val bus : t -> Bus.t

val on_start : t -> (unit -> unit) -> unit
(** Register a start handler (several allowed; run in order). *)

val on_frame : t -> (Frame.t -> unit) -> unit
(** Register a frame handler; fires for every frame from other nodes. *)

val send : t -> Frame.t -> unit
(** Queue a frame for transmission on the bus. *)

val set_timer : t -> name:string -> us:int -> (unit -> unit) -> unit
(** (Re)arm a named one-shot timer (duration in microseconds); re-arming
    cancels the previous one. *)

val cancel_timer : t -> name:string -> unit

val start : t -> unit
(** Run the start handlers (at current simulation time). *)
