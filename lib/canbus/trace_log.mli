(** Chronological record of bus activity, for assertions and conformance
    checking against extracted CSP models. *)

type direction =
  | Tx  (** frame won arbitration and was transmitted *)
  | Rx of string  (** frame delivered to the named node *)
  | Fault of string
      (** an injected fault or error-confinement event affecting the
          frame; the string names the kind (e.g. ["drop"], ["corrupt"],
          ["retransmit"], ["bus-off"]) *)

type entry = {
  time : int;  (** microseconds *)
  node : string;  (** transmitter *)
  direction : direction;
  frame : Frame.t;
}

type t

val create : unit -> t
val record : t -> entry -> unit
val entries : t -> entry list
(** In chronological order. *)

val transmissions : t -> entry list
(** Only [Tx] entries. *)

val faults : t -> entry list
(** Only [Fault] entries. *)

val length : t -> int
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
