(** Chronological record of bus activity, for assertions and conformance
    checking against extracted CSP models.

    The log is a growable array in chronological order: {!record} is
    amortised O(1), and {!iter}/{!fold} stream the entries without
    materialising a list — the API large trace corpora are built on.
    {!entries} remains for small logs and tests. *)

type direction =
  | Tx  (** frame won arbitration and was transmitted *)
  | Rx of string  (** frame delivered to the named node *)
  | Fault of string
      (** an injected fault or error-confinement event affecting the
          frame; the string names the kind (e.g. ["drop"], ["corrupt"],
          ["retransmit"], ["bus-off"]) *)

type entry = {
  time : int;  (** microseconds *)
  node : string;  (** transmitter *)
  direction : direction;
  frame : Frame.t;
}

type t

val create : unit -> t
val record : t -> entry -> unit

val iter : t -> (entry -> unit) -> unit
(** In chronological order, O(1) extra memory. *)

val fold : t -> init:'a -> ('a -> entry -> 'a) -> 'a
(** In chronological order, O(1) extra memory. *)

val entries : t -> entry list
(** In chronological order. Materialises the whole log; prefer
    {!iter}/{!fold} on large logs. *)

val transmissions : t -> entry list
(** Only [Tx] entries. *)

val faults : t -> entry list
(** Only [Fault] entries. *)

val length : t -> int
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

(** {1 can-trace/1 codec}

    Stable NDJSON encoding of entries, one object per line:
    [{"t":<us>,"n":<node>,"d":"tx"|"rx:<node>"|"fault:<kind>",
    "id":<id>,["ext":true,]"data":[<bytes>]}]. Field order is fixed, so
    [entry_of_json] followed by [entry_to_json] reproduces the input
    byte-for-byte. Corpus files carry this schema tag in their header
    line (see [Serve.Trace_io]). *)

val schema : string
(** ["can-trace/1"]. *)

val entry_to_json : entry -> Obs.Json.t

val entry_of_json : Obs.Json.t -> (entry, string) result
(** Validates shape and frame invariants (id range, dlc, byte range);
    never raises. *)
