type node_id = int

type node = {
  name : string;
  rx : Frame.t -> unit;
}

type delivery = {
  delay : int;
  frame : Frame.t;
}

type pending = {
  src : node_id;
  frame : Frame.t;
  arrival : int;  (* tie-break: FIFO per arrival *)
}

type t = {
  bitrate : int;
  sched : Scheduler.t;
  log : Trace_log.t;
  mutable nodes : node array;
  mutable queue : pending list;
  mutable busy : bool;
  mutable seq : int;
  mutable tx_gate : (node_id -> Frame.t -> bool) option;
  mutable wire_hook : (src:node_id -> Frame.t -> delivery list) option;
  mutable rx_gate : (node_id -> bool) option;
}

let create ?(bitrate = 500_000) sched =
  {
    bitrate;
    sched;
    log = Trace_log.create ();
    nodes = [||];
    queue = [];
    busy = false;
    seq = 0;
    tx_gate = None;
    wire_hook = None;
    rx_gate = None;
  }

let set_tx_gate t gate = t.tx_gate <- gate
let set_wire_hook t hook = t.wire_hook <- hook
let set_rx_gate t gate = t.rx_gate <- gate

let scheduler t = t.sched
let log t = t.log

let attach t ~name ~rx =
  let id = Array.length t.nodes in
  t.nodes <- Array.append t.nodes [| { name; rx } |];
  id

let node_name t id = t.nodes.(id).name
let node_ids t = List.init (Array.length t.nodes) (fun i -> i)

let record_fault t ~node ~kind frame =
  Trace_log.record t.log
    {
      Trace_log.time = Scheduler.now t.sched;
      node;
      direction = Trace_log.Fault kind;
      frame;
    }

let frame_duration t frame =
  (* microseconds on the wire, rounded up *)
  let bits = Frame.bit_length frame in
  ((bits * 1_000_000) + t.bitrate - 1) / t.bitrate

let pending_frames t = List.length t.queue + if t.busy then 1 else 0

(* Start transmitting the highest-priority pending frame, if the bus is
   idle. Delivery happens when the frame completes. *)
let rec arbitrate t =
  if (not t.busy) && t.queue <> [] then begin
    let best =
      List.fold_left
        (fun acc p ->
          match acc with
          | None -> Some p
          | Some q ->
            let r = Frame.compare_priority p.frame q.frame in
            if r < 0 || (r = 0 && p.arrival < q.arrival) then Some p else Some q)
        None t.queue
    in
    match best with
    | None -> ()
    | Some winner ->
      t.queue <- List.filter (fun p -> p.arrival <> winner.arrival) t.queue;
      t.busy <- true;
      let duration = frame_duration t winner.frame in
      ignore
        (Scheduler.after t.sched duration (fun () ->
             t.busy <- false;
             let src_name = t.nodes.(winner.src).name in
             Trace_log.record t.log
               {
                 Trace_log.time = Scheduler.now t.sched;
                 node = src_name;
                 direction = Trace_log.Tx;
                 frame = winner.frame;
               };
             (* The wire hook sees every completed transmission and decides
                what actually arrives: the frame unchanged (default), a
                mutated or delayed copy, several copies, or nothing. *)
             let deliveries =
               match t.wire_hook with
               | None -> [ { delay = 0; frame = winner.frame } ]
               | Some hook -> hook ~src:winner.src winner.frame
             in
             let deliver (d : delivery) () =
               Array.iteri
                 (fun i node ->
                   let gated =
                     match t.rx_gate with
                     | Some gate -> not (gate i)
                     | None -> false
                   in
                   if i <> winner.src && not gated then begin
                     Trace_log.record t.log
                       {
                         Trace_log.time = Scheduler.now t.sched;
                         node = src_name;
                         direction = Trace_log.Rx node.name;
                         frame = d.frame;
                       };
                     node.rx d.frame
                   end)
                 t.nodes
             in
             List.iter
               (fun d ->
                 if d.delay <= 0 then deliver d ()
                 else ignore (Scheduler.after t.sched d.delay (deliver d)))
               deliveries;
             arbitrate t))
  end

let transmit t src frame =
  let allowed =
    match t.tx_gate with Some gate -> gate src frame | None -> true
  in
  if allowed then begin
    let p = { src; frame; arrival = t.seq } in
    t.seq <- t.seq + 1;
    t.queue <- t.queue @ [ p ];
    (* Defer arbitration to a zero-delay event so that frames queued at the
       same instant by different nodes arbitrate together. *)
    ignore (Scheduler.after t.sched 0 (fun () -> arbitrate t))
  end
