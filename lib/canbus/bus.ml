type node_id = int

type node = {
  name : string;
  rx : Frame.t -> unit;
}

type pending = {
  src : node_id;
  frame : Frame.t;
  arrival : int;  (* tie-break: FIFO per arrival *)
}

type t = {
  bitrate : int;
  sched : Scheduler.t;
  log : Trace_log.t;
  mutable nodes : node array;
  mutable queue : pending list;
  mutable busy : bool;
  mutable seq : int;
}

let create ?(bitrate = 500_000) sched =
  {
    bitrate;
    sched;
    log = Trace_log.create ();
    nodes = [||];
    queue = [];
    busy = false;
    seq = 0;
  }

let scheduler t = t.sched
let log t = t.log

let attach t ~name ~rx =
  let id = Array.length t.nodes in
  t.nodes <- Array.append t.nodes [| { name; rx } |];
  id

let node_name t id = t.nodes.(id).name

let frame_duration t frame =
  (* microseconds on the wire, rounded up *)
  let bits = Frame.bit_length frame in
  ((bits * 1_000_000) + t.bitrate - 1) / t.bitrate

let pending_frames t = List.length t.queue + if t.busy then 1 else 0

(* Start transmitting the highest-priority pending frame, if the bus is
   idle. Delivery happens when the frame completes. *)
let rec arbitrate t =
  if (not t.busy) && t.queue <> [] then begin
    let best =
      List.fold_left
        (fun acc p ->
          match acc with
          | None -> Some p
          | Some q ->
            let r = Frame.compare_priority p.frame q.frame in
            if r < 0 || (r = 0 && p.arrival < q.arrival) then Some p else Some q)
        None t.queue
    in
    match best with
    | None -> ()
    | Some winner ->
      t.queue <- List.filter (fun p -> p.arrival <> winner.arrival) t.queue;
      t.busy <- true;
      let duration = frame_duration t winner.frame in
      ignore
        (Scheduler.after t.sched duration (fun () ->
             t.busy <- false;
             let src_name = t.nodes.(winner.src).name in
             Trace_log.record t.log
               {
                 Trace_log.time = Scheduler.now t.sched;
                 node = src_name;
                 direction = Trace_log.Tx;
                 frame = winner.frame;
               };
             Array.iteri
               (fun i node ->
                 if i <> winner.src then begin
                   Trace_log.record t.log
                     {
                       Trace_log.time = Scheduler.now t.sched;
                       node = src_name;
                       direction = Trace_log.Rx node.name;
                       frame = winner.frame;
                     };
                   node.rx winner.frame
                 end)
               t.nodes;
             arbitrate t))
  end

let transmit t src frame =
  let p = { src; frame; arrival = t.seq } in
  t.seq <- t.seq + 1;
  t.queue <- t.queue @ [ p ];
  (* Defer arbitration to a zero-delay event so that frames queued at the
     same instant by different nodes arbitrate together. *)
  ignore (Scheduler.after t.sched 0 (fun () -> arbitrate t))
