(* Deterministic fault injection for the simulated bus, plus the CAN
   error-confinement state machine (ISO 11898-1 §12): transmit/receive
   error counters per node, error-active -> error-passive -> bus-off
   transitions, and bounded automatic retransmission of frames destroyed
   on the wire.

   Randomness comes from a splitmix64 generator split per fault kind, so
   every decision stream is independent yet fully determined by the plan
   seed — two runs of the same scenario produce byte-identical traces. *)

module Rng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let make seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state golden;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let split t = { state = next t }

  let float t =
    (* top 53 bits -> [0, 1) *)
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    /. 9007199254740992.0

  let int t bound =
    if bound <= 0 then invalid_arg "Fault.Rng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                    (Int64.of_int bound))
end

type babble = {
  babble_id : int;
  period_us : int;
  count : int;
}

type plan = {
  seed : int;
  drop : float;
  corrupt : float;
  delay : float;
  delay_us : int;
  duplicate : float;
  only : string option;
  babble : babble option;
}

let plan ?(seed = 0) ?(drop = 0.) ?(corrupt = 0.) ?(delay = 0.)
    ?(delay_us = 200) ?(duplicate = 0.) ?only ?babble () =
  let check name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Fault.plan: %s not a probability" name)
  in
  check "drop" drop;
  check "corrupt" corrupt;
  check "delay" delay;
  check "duplicate" duplicate;
  { seed; drop; corrupt; delay; delay_us; duplicate; only; babble }

let babble ?(id = 0) ?(period_us = 1_000) ?(count = 100) () =
  { babble_id = id; period_us; count }

type node_state =
  | Error_active
  | Error_passive
  | Bus_off

type stats = {
  drops : int;
  corruptions : int;
  delays : int;
  duplicates : int;
  retransmissions : int;
  abandoned : int;
  bus_off_blocked : int;
  babbled : int;
}

let zero_stats =
  {
    drops = 0;
    corruptions = 0;
    delays = 0;
    duplicates = 0;
    retransmissions = 0;
    abandoned = 0;
    bus_off_blocked = 0;
    babbled = 0;
  }

type t = {
  bus : Bus.t;
  plan : plan;
  max_retries : int;
  tec_passive : int;
  tec_busoff : int;
  drop_rng : Rng.t;
  corrupt_rng : Rng.t;
  delay_rng : Rng.t;
  dup_rng : Rng.t;
  tec : (Bus.node_id, int) Hashtbl.t;
  rec_tbl : (Bus.node_id, int) Hashtbl.t;
  retries : (Bus.node_id * Frame.t, int) Hashtbl.t;
  mutable stats : stats;
  mutable active : bool;  (* cleared by uninstall; stops the babbler *)
}

let counter tbl id = Option.value (Hashtbl.find_opt tbl id) ~default:0

let tec t id = counter t.tec id
let rec_count t id = counter t.rec_tbl id

let node_state t id =
  let tec = tec t id in
  if tec >= t.tec_busoff then Bus_off
  else if tec >= t.tec_passive || rec_count t id >= t.tec_passive then
    Error_passive
  else Error_active

let stats t = t.stats

(* Interframe space before a retransmission attempt: three bit times at
   500 kbit/s, rounded up. *)
let retransmit_gap_us = 10

let bump tbl id delta =
  Hashtbl.replace tbl id (max 0 (counter tbl id + delta))

let fault t src kind frame =
  Bus.record_fault t.bus ~node:(Bus.node_name t.bus src) ~kind frame

(* A transmit error: TEC +8 (ISO 11898-1), possibly crossing into
   error-passive or bus-off. The bus-off transition is logged once. *)
let transmit_error t src frame =
  let was_off = node_state t src = Bus_off in
  bump t.tec src 8;
  if (not was_off) && node_state t src = Bus_off then
    fault t src "bus-off" frame

let applies t src =
  match t.plan.only with
  | None -> true
  | Some name -> String.equal (Bus.node_name t.bus src) name

(* Retransmission of a frame destroyed on the wire, within the retry
   budget. The retransmitted frame re-enters arbitration and the wire
   hook like any other, so it can be dropped (and counted) again. *)
let handle_drop t src frame =
  t.stats <- { t.stats with drops = t.stats.drops + 1 };
  fault t src "drop" frame;
  transmit_error t src frame;
  let key = src, frame in
  let attempts = Option.value (Hashtbl.find_opt t.retries key) ~default:0 in
  if attempts >= t.max_retries then begin
    Hashtbl.remove t.retries key;
    t.stats <- { t.stats with abandoned = t.stats.abandoned + 1 };
    fault t src "abandon" frame
  end
  else begin
    Hashtbl.replace t.retries key (attempts + 1);
    t.stats <- { t.stats with retransmissions = t.stats.retransmissions + 1 };
    fault t src "retransmit" frame;
    ignore
      (Scheduler.after (Bus.scheduler t.bus) retransmit_gap_us (fun () ->
           if t.active then Bus.transmit t.bus src frame))
  end

let corrupt_frame t frame =
  if frame.Frame.dlc > 0 then begin
    let byte = Rng.int t.corrupt_rng frame.Frame.dlc in
    let bit = Rng.int t.corrupt_rng 8 in
    Frame.set_data_byte frame byte (Frame.data_byte frame byte lxor (1 lsl bit))
  end
  else { frame with Frame.id = frame.Frame.id lxor 1 }

let wire_hook t ~src frame =
  if not (applies t src) then [ { Bus.delay = 0; frame } ]
  else if t.plan.drop > 0. && Rng.float t.drop_rng < t.plan.drop then begin
    handle_drop t src frame;
    []
  end
  else begin
    (* Survived the wire: a successful transmission decrements TEC. *)
    bump t.tec src (-1);
    Hashtbl.remove t.retries (src, frame);
    let frame =
      if t.plan.corrupt > 0. && Rng.float t.corrupt_rng < t.plan.corrupt
      then begin
        t.stats <- { t.stats with corruptions = t.stats.corruptions + 1 };
        fault t src "corrupt" frame;
        (* Undetected corruption raises every receiver's REC a notch. *)
        List.iter
          (fun id -> if id <> src then bump t.rec_tbl id 1)
          (Bus.node_ids t.bus);
        corrupt_frame t frame
      end
      else frame
    in
    let delay =
      if t.plan.delay > 0. && Rng.float t.delay_rng < t.plan.delay then begin
        t.stats <- { t.stats with delays = t.stats.delays + 1 };
        fault t src "delay" frame;
        t.plan.delay_us
      end
      else 0
    in
    let first = { Bus.delay; frame } in
    if t.plan.duplicate > 0. && Rng.float t.dup_rng < t.plan.duplicate
    then begin
      t.stats <- { t.stats with duplicates = t.stats.duplicates + 1 };
      fault t src "duplicate" frame;
      [ first; { Bus.delay = delay + retransmit_gap_us; frame } ]
    end
    else [ first ]
  end

let start_babbler t spec =
  let frame = Frame.make ~id:spec.babble_id [ 0xBA; 0xAD ] in
  let id = Bus.attach t.bus ~name:"babbler" ~rx:(fun _ -> ()) in
  let rec babble_step remaining () =
    if t.active && remaining > 0 then begin
      t.stats <- { t.stats with babbled = t.stats.babbled + 1 };
      Bus.transmit t.bus id frame;
      ignore
        (Scheduler.after (Bus.scheduler t.bus) spec.period_us
           (babble_step (remaining - 1)))
    end
  in
  ignore (Scheduler.after (Bus.scheduler t.bus) spec.period_us (babble_step spec.count))

let install ?(max_retries = 3) ?(tec_passive = 128) ?(tec_busoff = 256) bus
    plan =
  let master = Rng.make plan.seed in
  let t =
    {
      bus;
      plan;
      max_retries;
      tec_passive;
      tec_busoff;
      (* split order is part of the format: drop, corrupt, delay, dup *)
      drop_rng = Rng.split master;
      corrupt_rng = Rng.split master;
      delay_rng = Rng.split master;
      dup_rng = Rng.split master;
      tec = Hashtbl.create 16;
      rec_tbl = Hashtbl.create 16;
      retries = Hashtbl.create 16;
      stats = zero_stats;
      active = true;
    }
  in
  Bus.set_tx_gate bus
    (Some
       (fun src frame ->
         if node_state t src = Bus_off then begin
           t.stats <-
             { t.stats with bus_off_blocked = t.stats.bus_off_blocked + 1 };
           fault t src "bus-off-drop" frame;
           false
         end
         else true));
  Bus.set_wire_hook bus (Some (fun ~src frame -> wire_hook t ~src frame));
  Bus.set_rx_gate bus (Some (fun id -> node_state t id <> Bus_off));
  Option.iter (start_babbler t) plan.babble;
  t

let uninstall t =
  t.active <- false;
  Bus.set_tx_gate t.bus None;
  Bus.set_wire_hook t.bus None;
  Bus.set_rx_gate t.bus None

let pp_node_state ppf = function
  | Error_active -> Format.pp_print_string ppf "error-active"
  | Error_passive -> Format.pp_print_string ppf "error-passive"
  | Bus_off -> Format.pp_print_string ppf "bus-off"

let pp_stats ppf s =
  Format.fprintf ppf
    "drops=%d corruptions=%d delays=%d duplicates=%d retransmissions=%d \
     abandoned=%d bus_off_blocked=%d babbled=%d"
    s.drops s.corruptions s.delays s.duplicates s.retransmissions s.abandoned
    s.bus_off_blocked s.babbled
