(** Discrete-event scheduler with microsecond resolution.

    Events fire in (time, insertion-sequence) order, so simultaneous events
    run in the order they were scheduled — deterministic by construction,
    which keeps simulation traces reproducible. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> int
(** Current simulation time in microseconds. *)

val at : t -> int -> (unit -> unit) -> handle
(** [at sched time action] schedules [action] at absolute [time].
    @raise Invalid_argument if [time] is in the past. *)

val after : t -> int -> (unit -> unit) -> handle
(** [after sched delay action] schedules at [now + delay]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still scheduled. *)

val step : t -> bool
(** Fire the earliest event; [false] if none remain. *)

val run : ?until:int -> ?max_events:int -> t -> int
(** Fire events until the queue is empty, simulation time would pass
    [until], or [max_events] (default 1_000_000) have fired; returns the
    number of events fired. *)
