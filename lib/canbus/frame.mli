(** CAN data frames.

    A classical CAN 2.0 frame: an 11-bit (or 29-bit extended) identifier,
    a data-length code of 0..8, and up to eight data bytes. Identifiers
    double as priorities: the lowest identifier wins arbitration. *)

type t = {
  id : int;  (** 11-bit standard or 29-bit extended identifier *)
  extended : bool;
  dlc : int;  (** data length code, 0..8 *)
  data : int array;  (** [dlc] bytes, each 0..255 *)
}

exception Invalid_frame of string

val make : ?extended:bool -> id:int -> int list -> t
(** [make ~id bytes] builds a frame carrying [bytes].
    @raise Invalid_frame if the id is out of range for its format, more
    than 8 data bytes are given, or a byte is outside 0..255. *)

val data_byte : t -> int -> int
(** [data_byte f i] is byte [i], or 0 if [i >= dlc] (CAN receivers pad). *)

val set_data_byte : t -> int -> int -> t
(** Functional update of byte [i] (extends [dlc] if needed).
    @raise Invalid_frame on a bad index or byte value. *)

val bit_length : t -> int
(** Nominal frame size on the wire, including overhead (44 bits + stuffing
    ignored for the standard format, 64 + overhead for extended). *)

val equal : t -> t -> bool
val compare_priority : t -> t -> int
(** Arbitration order: lower identifier first; extended loses to standard
    at equal leading bits (approximated as standard-before-extended on equal
    ids). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
