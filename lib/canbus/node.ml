type t = {
  bus : Bus.t;
  id : Bus.node_id;
  name : string;
  mutable start_handlers : (unit -> unit) list;  (* reverse order *)
  mutable frame_handlers : (Frame.t -> unit) list;  (* reverse order *)
  timers : (string, Scheduler.handle) Hashtbl.t;
}

let create bus ~name =
  let rec node =
    lazy
      {
        bus;
        id = Bus.attach bus ~name ~rx:(fun frame -> dispatch frame);
        name;
        start_handlers = [];
        frame_handlers = [];
        timers = Hashtbl.create 4;
      }
  and dispatch frame =
    List.iter (fun h -> h frame) (List.rev (Lazy.force node).frame_handlers)
  in
  Lazy.force node

let name t = t.name
let bus t = t.bus

let on_start t h = t.start_handlers <- h :: t.start_handlers
let on_frame t h = t.frame_handlers <- h :: t.frame_handlers

let send t frame = Bus.transmit t.bus t.id frame

let cancel_timer t ~name =
  match Hashtbl.find_opt t.timers name with
  | None -> ()
  | Some handle ->
    Scheduler.cancel (Bus.scheduler t.bus) handle;
    Hashtbl.remove t.timers name

let set_timer t ~name ~us action =
  cancel_timer t ~name;
  let sched = Bus.scheduler t.bus in
  let handle =
    Scheduler.after sched us (fun () ->
        Hashtbl.remove t.timers name;
        action ())
  in
  Hashtbl.replace t.timers name handle

let start t = List.iter (fun h -> h ()) (List.rev t.start_handlers)
