exception Elab_error of string * Ast.pos option

type t = {
  defs : Csp.Defs.t;
  assertions : (Ast.assertion * Ast.pos) list;
  positions : (string * Ast.pos) list;
}

let err ?pos fmt =
  Format.kasprintf (fun s -> raise (Elab_error (s, pos))) fmt

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec ty_of_ty_expr ?pos (te : Ast.ty_expr) : Csp.Ty.t =
  match te with
  | Ast.TE_bool -> Csp.Ty.Bool
  | Ast.TE_name "Int" ->
    err ?pos "unbounded Int is not supported; use a range {lo..hi}"
  | Ast.TE_name n -> Csp.Ty.Named n
  | Ast.TE_range (lo, hi) -> Csp.Ty.Int_range (lo, hi)
  | Ast.TE_tuple tes -> Csp.Ty.Tuple (List.map (ty_of_ty_expr ?pos) tes)

(* ------------------------------------------------------------------ *)
(* Definition classification                                           *)
(* ------------------------------------------------------------------ *)

type klass =
  | Proc_def
  | Fun_def

let rec contains_proc_construct defined (term : Ast.term) =
  match term with
  | Ast.T_stop | Ast.T_skip | Ast.T_prefix _ | Ast.T_extchoice _
  | Ast.T_intchoice _ | Ast.T_seq _ | Ast.T_par _ | Ast.T_apar _
  | Ast.T_interleave _ | Ast.T_interrupt _ | Ast.T_slide _ | Ast.T_hide _
  | Ast.T_rename _ | Ast.T_guard _ | Ast.T_repl _ ->
    true
  | Ast.T_app (("RUN" | "CHAOS"), _) -> true
  | Ast.T_if (_, a, b) ->
    contains_proc_construct defined a || contains_proc_construct defined b
  | Ast.T_num _ | Ast.T_bool _ | Ast.T_id _ | Ast.T_dot _ | Ast.T_app _
  | Ast.T_tuple _ | Ast.T_set _ | Ast.T_range _ | Ast.T_chanset _
  | Ast.T_neg _ | Ast.T_not _ | Ast.T_bin _ ->
    false

(* References at "head position" of a body: the places where a definition's
   class propagates from what it refers to (plain aliases and conditionals
   over aliases). *)
let rec head_refs (term : Ast.term) =
  match term with
  | Ast.T_id n -> [ n ]
  | Ast.T_app (n, _) -> [ n ]
  | Ast.T_if (_, a, b) -> head_refs a @ head_refs b
  | _ -> []

let classify (defs_list : (string * string list * Ast.term * Ast.pos) list) =
  let names = List.map (fun (n, _, _, _) -> n) defs_list in
  let table = Hashtbl.create 16 in
  (* Seed with syntactically obvious processes. *)
  List.iter
    (fun (n, _, body, _) ->
      if contains_proc_construct names body then
        Hashtbl.replace table n Proc_def)
    defs_list;
  (* Propagate through head references until stable. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, _, body, _) ->
        if not (Hashtbl.mem table n) then
          let refs = head_refs body in
          if
            List.exists
              (fun r -> Hashtbl.find_opt table r = Some Proc_def)
              refs
          then begin
            Hashtbl.replace table n Proc_def;
            changed := true
          end)
      defs_list
  done;
  fun n -> Option.value ~default:Fun_def (Hashtbl.find_opt table n)

(* ------------------------------------------------------------------ *)
(* Term elaboration                                                    *)
(* ------------------------------------------------------------------ *)

(* Flatten a dotted chain [((a.b).c)] to its head identifier and argument
   terms, if it has that shape. *)
let rec flatten_dots (term : Ast.term) =
  match term with
  | Ast.T_id n -> Some (n, [])
  | Ast.T_dot (l, r) ->
    (match flatten_dots l with
     | Some (n, args) -> Some (n, args @ [ r ])
     | None -> None)
  | _ -> None

type ctx = {
  defs : Csp.Defs.t;
  klass_of : string -> klass option;  (* None: not a definition *)
  pos : Ast.pos option;
}

let binop_of : Ast.binop -> Csp.Expr.binop = function
  | Ast.B_add -> Csp.Expr.Add
  | Ast.B_sub -> Csp.Expr.Sub
  | Ast.B_mul -> Csp.Expr.Mul
  | Ast.B_div -> Csp.Expr.Div
  | Ast.B_mod -> Csp.Expr.Mod
  | Ast.B_eq -> Csp.Expr.Eq
  | Ast.B_neq -> Csp.Expr.Neq
  | Ast.B_lt -> Csp.Expr.Lt
  | Ast.B_le -> Csp.Expr.Le
  | Ast.B_gt -> Csp.Expr.Gt
  | Ast.B_ge -> Csp.Expr.Ge
  | Ast.B_and -> Csp.Expr.And
  | Ast.B_or -> Csp.Expr.Or

let rec elab_expr ctx scope (term : Ast.term) : Csp.Expr.t =
  match term with
  | Ast.T_num n -> Csp.Expr.Lit (Csp.Value.Int n)
  | Ast.T_bool b -> Csp.Expr.Lit (Csp.Value.Bool b)
  | Ast.T_id x ->
    if List.mem x scope then Csp.Expr.Var x
    else if Option.is_some (Csp.Defs.find_ctor ctx.defs x) then
      Csp.Expr.Lit (Csp.Value.sym x)
    else begin
      match ctx.klass_of x with
      | Some Fun_def -> Csp.Expr.App (x, [])
      | Some Proc_def -> err ?pos:ctx.pos "process %s used in expression" x
      | None ->
        (match Csp.Defs.ty_lookup ctx.defs x with
         | Some _ -> Csp.Expr.Ty_dom (Csp.Ty.Named x)
         | None -> err ?pos:ctx.pos "unknown identifier %s" x)
    end
  | Ast.T_dot _ ->
    (match flatten_dots term with
     | Some (head, args) when Option.is_some (Csp.Defs.find_ctor ctx.defs head)
       ->
       Csp.Expr.Ctor (head, List.map (elab_expr ctx scope) args)
     | Some (head, _) -> err ?pos:ctx.pos "%s is not a datatype constructor" head
     | None -> err ?pos:ctx.pos "unsupported dotted expression")
  | Ast.T_app ("member", [ e; s ]) ->
    Csp.Expr.Mem (elab_expr ctx scope e, elab_set ctx scope s)
  | Ast.T_app (f, args) ->
    (match ctx.klass_of f with
     | Some Fun_def -> Csp.Expr.App (f, List.map (elab_expr ctx scope) args)
     | Some Proc_def -> err ?pos:ctx.pos "process %s used in expression" f
     | None -> err ?pos:ctx.pos "unknown function %s" f)
  | Ast.T_tuple items -> Csp.Expr.Tuple (List.map (elab_expr ctx scope) items)
  | Ast.T_neg e -> Csp.Expr.Neg (elab_expr ctx scope e)
  | Ast.T_not e -> Csp.Expr.Not (elab_expr ctx scope e)
  | Ast.T_bin (op, a, b) ->
    Csp.Expr.Bin (binop_of op, elab_expr ctx scope a, elab_expr ctx scope b)
  | Ast.T_if (c, a, b) ->
    Csp.Expr.If
      (elab_expr ctx scope c, elab_expr ctx scope a, elab_expr ctx scope b)
  | Ast.T_set _ | Ast.T_range _ -> elab_set ctx scope term
  | Ast.T_chanset _ ->
    err ?pos:ctx.pos "event set used in expression position"
  | Ast.T_stop | Ast.T_skip | Ast.T_prefix _ | Ast.T_extchoice _
  | Ast.T_intchoice _ | Ast.T_seq _ | Ast.T_par _ | Ast.T_apar _
  | Ast.T_interleave _ | Ast.T_interrupt _ | Ast.T_slide _ | Ast.T_hide _
  | Ast.T_rename _ | Ast.T_guard _ | Ast.T_repl _ ->
    err ?pos:ctx.pos "process construct used in expression position"

(* Sets in scalar-set position: replication ranges, input restrictions,
   membership right-hand sides. *)
and elab_set ctx scope (term : Ast.term) : Csp.Expr.t =
  match term with
  | Ast.T_set items -> Csp.Expr.Set (List.map (elab_expr ctx scope) items)
  | Ast.T_range (lo, hi) ->
    Csp.Expr.Range (elab_expr ctx scope lo, elab_expr ctx scope hi)
  | Ast.T_id n when Option.is_some (Csp.Defs.ty_lookup ctx.defs n) ->
    Csp.Expr.Ty_dom (Csp.Ty.Named n)
  | Ast.T_id "Bool" -> Csp.Expr.Ty_dom Csp.Ty.Bool
  | Ast.T_app ("union", [ a; b ]) ->
    (* Value-set union is not first-class in Expr; expand literally when
       both sides are literal sets. *)
    (match elab_set ctx scope a, elab_set ctx scope b with
     | Csp.Expr.Set xs, Csp.Expr.Set ys -> Csp.Expr.Set (xs @ ys)
     | _ -> err ?pos:ctx.pos "union(...) of non-literal value sets")
  | _ -> elab_expr ctx scope term

let elab_event ctx scope (term : Ast.term) : Csp.Event.t =
  let head, args =
    match flatten_dots term with
    | Some (head, args) -> head, args
    | None -> err ?pos:ctx.pos "expected an event"
  in
  match Csp.Defs.channel_type ctx.defs head with
  | None -> err ?pos:ctx.pos "unknown channel %s in event" head
  | Some _ ->
    let values =
      List.map
        (fun arg ->
          let e = elab_expr ctx scope arg in
          try
            Csp.Expr.eval
              ~tys:(Csp.Defs.ty_lookup ctx.defs)
              (Csp.Defs.fenv ctx.defs) Csp.Expr.empty_env e
          with Csp.Expr.Eval_error msg ->
            err ?pos:ctx.pos "event argument: %s" msg)
        args
    in
    Csp.Event.event head values

let rec elab_eventset ctx scope (term : Ast.term) : Csp.Eventset.t =
  match term with
  | Ast.T_chanset items ->
    let production item =
      match flatten_dots item with
      | Some (c, args) ->
        if Option.is_none (Csp.Defs.channel_type ctx.defs c) then
          err ?pos:ctx.pos "unknown channel %s in {| |}" c;
        let values =
          List.map
            (fun a ->
              let e = elab_expr ctx scope a in
              try
                Csp.Expr.eval
                  ~tys:(Csp.Defs.ty_lookup ctx.defs)
                  (Csp.Defs.fenv ctx.defs) Csp.Expr.empty_env e
              with Csp.Expr.Eval_error msg ->
                err ?pos:ctx.pos "production argument: %s" msg)
            args
        in
        Csp.Eventset.prefixed c values
      | None -> err ?pos:ctx.pos "malformed channel production in {| |}"
    in
    Csp.Eventset.union_all (List.map production items)
  | Ast.T_set [] -> Csp.Eventset.empty
  | Ast.T_set items ->
    Csp.Eventset.events (List.map (elab_event ctx scope) items)
  | Ast.T_app ("union", [ a; b ]) ->
    Csp.Eventset.union (elab_eventset ctx scope a) (elab_eventset ctx scope b)
  | Ast.T_app ("diff", [ a; b ]) ->
    Csp.Eventset.diff (elab_eventset ctx scope a) (elab_eventset ctx scope b)
  | _ -> err ?pos:ctx.pos "expected an event set ({| c |}, {c.v}, union, diff)"

let rec elab_proc ctx scope (term : Ast.term) : Csp.Proc.t =
  match term with
  | Ast.T_stop -> Csp.Proc.stop
  | Ast.T_skip -> Csp.Proc.skip
  | Ast.T_prefix ({ Ast.chan; fields }, cont) ->
    if Option.is_none (Csp.Defs.channel_type ctx.defs chan) then
      err ?pos:ctx.pos "prefix on undeclared channel %s" chan;
    let scope', rev_items =
      List.fold_left
        (fun (scope, items) field ->
          match field with
          | Ast.F_out e | Ast.F_dot e ->
            scope, Csp.Proc.Out (elab_expr ctx scope e) :: items
          | Ast.F_in (x, restr) ->
            let restr = Option.map (elab_set ctx scope) restr in
            x :: scope, Csp.Proc.In (x, restr) :: items)
        (scope, []) fields
    in
    Csp.Proc.prefix_items (chan, List.rev rev_items, elab_proc ctx scope' cont)
  | Ast.T_extchoice (a, b) ->
    Csp.Proc.ext (elab_proc ctx scope a, elab_proc ctx scope b)
  | Ast.T_intchoice (a, b) ->
    Csp.Proc.intc (elab_proc ctx scope a, elab_proc ctx scope b)
  | Ast.T_seq (a, b) ->
    Csp.Proc.seq (elab_proc ctx scope a, elab_proc ctx scope b)
  | Ast.T_par (a, set, b) ->
    Csp.Proc.par
      (elab_proc ctx scope a, elab_eventset ctx scope set, elab_proc ctx scope b)
  | Ast.T_apar (a, sa, sb, b) ->
    Csp.Proc.apar
      ( elab_proc ctx scope a,
        elab_eventset ctx scope sa,
        elab_eventset ctx scope sb,
        elab_proc ctx scope b )
  | Ast.T_interleave (a, b) ->
    Csp.Proc.inter (elab_proc ctx scope a, elab_proc ctx scope b)
  | Ast.T_interrupt (a, b) ->
    Csp.Proc.interrupt (elab_proc ctx scope a, elab_proc ctx scope b)
  | Ast.T_slide (a, b) ->
    Csp.Proc.timeout (elab_proc ctx scope a, elab_proc ctx scope b)
  | Ast.T_hide (p, set) ->
    Csp.Proc.hide (elab_proc ctx scope p, elab_eventset ctx scope set)
  | Ast.T_rename (p, mapping) ->
    List.iter
      (fun (a, b) ->
        if Option.is_none (Csp.Defs.channel_type ctx.defs a) then
          err ?pos:ctx.pos "renaming of undeclared channel %s" a;
        if Option.is_none (Csp.Defs.channel_type ctx.defs b) then
          err ?pos:ctx.pos "renaming to undeclared channel %s" b)
      mapping;
    Csp.Proc.rename (elab_proc ctx scope p, mapping)
  | Ast.T_guard (b, p) ->
    Csp.Proc.guard (elab_expr ctx scope b, elab_proc ctx scope p)
  | Ast.T_if (c, a, b) ->
    Csp.Proc.ite (elab_expr ctx scope c, elab_proc ctx scope a, elab_proc ctx scope b)
  | Ast.T_repl (kind, x, set, body) ->
    let set = elab_set ctx scope set in
    let body = elab_proc ctx (x :: scope) body in
    (match kind with
     | Ast.R_ext -> Csp.Proc.ext_over (x, set, body)
     | Ast.R_int -> Csp.Proc.int_over (x, set, body)
     | Ast.R_inter -> Csp.Proc.inter_over (x, set, body))
  | Ast.T_id n ->
    (match ctx.klass_of n with
     | Some Proc_def -> Csp.Proc.call (n, [])
     | Some Fun_def -> err ?pos:ctx.pos "function %s used as a process" n
     | None -> err ?pos:ctx.pos "unknown process %s" n)
  | Ast.T_app ("RUN", [ set ]) -> Csp.Proc.run (elab_eventset ctx scope set)
  | Ast.T_app ("CHAOS", [ set ]) -> Csp.Proc.chaos (elab_eventset ctx scope set)
  | Ast.T_app (n, args) ->
    (match ctx.klass_of n with
     | Some Proc_def ->
       Csp.Proc.call (n, List.map (elab_expr ctx scope) args)
     | Some Fun_def -> err ?pos:ctx.pos "function %s used as a process" n
     | None -> err ?pos:ctx.pos "unknown process %s" n)
  | Ast.T_num _ | Ast.T_bool _ | Ast.T_dot _ | Ast.T_tuple _ | Ast.T_set _
  | Ast.T_range _ | Ast.T_chanset _ | Ast.T_neg _ | Ast.T_not _ | Ast.T_bin _
    ->
    err ?pos:ctx.pos "expression used in process position"

(* ------------------------------------------------------------------ *)
(* Script loading                                                      *)
(* ------------------------------------------------------------------ *)

let load (script : Ast.script) : t =
  let defs = Csp.Defs.create () in
  let def_items = ref [] in
  let assertions = ref [] in
  let positions = ref [] in
  let note name pos = positions := (name, pos) :: !positions in
  (* First pass: declarations. *)
  List.iter
    (fun (decl, pos) ->
      match decl with
      | Ast.D_channel (names, ty_exprs) ->
        let tys = List.map (ty_of_ty_expr ~pos) ty_exprs in
        List.iter
          (fun c ->
            note c pos;
            try Csp.Defs.declare_channel defs c tys
            with Csp.Defs.Duplicate d -> err ~pos "duplicate %s" d)
          names
      | Ast.D_datatype (name, ctors) ->
        let ctors =
          List.map (fun (c, tys) -> c, List.map (ty_of_ty_expr ~pos) tys) ctors
        in
        note name pos;
        (try Csp.Defs.declare_datatype defs name ctors
         with Csp.Defs.Duplicate d -> err ~pos "duplicate %s" d)
      | Ast.D_nametype (name, te) ->
        note name pos;
        (try Csp.Defs.declare_nametype defs name (ty_of_ty_expr ~pos te)
         with Csp.Defs.Duplicate d -> err ~pos "duplicate %s" d)
      | Ast.D_def (name, params, body) ->
        note name pos;
        def_items := (name, params, body, pos) :: !def_items
      | Ast.D_assert a -> assertions := (a, pos) :: !assertions)
    script.Ast.decls;
  let def_items = List.rev !def_items in
  let klass = classify def_items in
  let def_names = List.map (fun (n, _, _, _) -> n) def_items in
  let klass_of n = if List.mem n def_names then Some (klass n) else None in
  (* Second pass: register bodies. Functions first so process bodies can
     reference them during const-folding later; order among functions or
     among processes does not matter because resolution is by name at
     evaluation time. *)
  List.iter
    (fun (name, params, body, pos) ->
      let ctx = { defs; klass_of; pos = Some pos } in
      match klass name with
      | Fun_def ->
        let e = elab_expr ctx params body in
        (try Csp.Defs.define_fun defs name params e
         with Csp.Defs.Duplicate d -> err ~pos "duplicate %s" d)
      | Proc_def ->
        let p = elab_proc ctx params body in
        (try Csp.Defs.define_proc defs name params p
         with Csp.Defs.Duplicate d -> err ~pos "duplicate %s" d))
    def_items;
  { defs; assertions = List.rev !assertions; positions = List.rev !positions }

let load_string ?(obs = Obs.silent) src =
  let ast = Obs.span obs "cspm.parse" (fun () -> Parser.script src) in
  Obs.span obs "cspm.elaborate" (fun () -> load ast)

let ctx_of (loaded : t) =
  let defs = loaded.defs in
  let klass_of n =
    if Option.is_some (Csp.Defs.proc defs n) then Some Proc_def
    else if
      (* 0-ary and n-ary functions both present themselves through fenv *)
      Option.is_some (Csp.Defs.fenv defs n)
    then Some Fun_def
    else None
  in
  { defs; klass_of; pos = None }

let proc_of_term loaded term = elab_proc (ctx_of loaded) [] term
let expr_of_term loaded term = elab_expr (ctx_of loaded) [] term
let eventset_of_term loaded term = elab_eventset (ctx_of loaded) [] term
