let rec pp_ty ppf (ty : Csp.Ty.t) =
  match ty with
  | Csp.Ty.Int_range (lo, hi) -> Format.fprintf ppf "{%d..%d}" lo hi
  | Csp.Ty.Bool -> Format.pp_print_string ppf "Bool"
  | Csp.Ty.Named n -> Format.pp_print_string ppf n
  | Csp.Ty.Tuple tys ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_ty)
      tys

let pp_eventset ppf (set : Csp.Eventset.t) = Csp.Eventset.pp ppf set

(* An output field prints bare only when re-lexing cannot split it into
   several fields: literals without dots, and variables. *)
let expr_is_comm_atom (e : Csp.Expr.t) =
  match e with
  | Csp.Expr.Lit (Csp.Value.Int _ | Csp.Value.Bool _ | Csp.Value.Ctor (_, []))
  | Csp.Expr.Var _ ->
    true
  | _ -> false

let rec pp_proc ppf (p : Csp.Proc.t) =
  match Csp.Proc.view p with
  | Csp.Proc.Stop -> Format.pp_print_string ppf "STOP"
  | Csp.Proc.Skip | Csp.Proc.Omega -> Format.pp_print_string ppf "SKIP"
  | Csp.Proc.Prefix (chan, items, cont) ->
    Format.pp_print_string ppf chan;
    List.iter
      (fun item ->
        match item with
        | Csp.Proc.Out e ->
          if expr_is_comm_atom e then Format.fprintf ppf "!%a" Csp.Expr.pp e
          else Format.fprintf ppf "!(%a)" Csp.Expr.pp e
        | Csp.Proc.In (x, None) -> Format.fprintf ppf "?%s" x
        | Csp.Proc.In (x, Some s) ->
          Format.fprintf ppf "?%s:(%a)" x Csp.Expr.pp s)
      items;
    Format.fprintf ppf " -> %a" pp_atom cont
  | Csp.Proc.Ext (a, b) -> Format.fprintf ppf "%a [] %a" pp_atom a pp_atom b
  | Csp.Proc.Int (a, b) -> Format.fprintf ppf "%a |~| %a" pp_atom a pp_atom b
  | Csp.Proc.Seq (a, b) -> Format.fprintf ppf "%a; %a" pp_atom a pp_atom b
  | Csp.Proc.Par (a, set, b) ->
    Format.fprintf ppf "%a [| %a |] %a" pp_atom a pp_eventset set pp_atom b
  | Csp.Proc.APar (a, sa, sb, b) ->
    Format.fprintf ppf "%a [ %a || %a ] %a" pp_atom a pp_eventset sa
      pp_eventset sb pp_atom b
  | Csp.Proc.Inter (a, b) -> Format.fprintf ppf "%a ||| %a" pp_atom a pp_atom b
  | Csp.Proc.Interrupt (a, b) ->
    Format.fprintf ppf "%a /\\ %a" pp_atom a pp_atom b
  | Csp.Proc.Timeout (a, b) -> Format.fprintf ppf "%a [> %a" pp_atom a pp_atom b
  | Csp.Proc.Hide (a, set) ->
    Format.fprintf ppf "%a \\ %a" pp_atom a pp_eventset set
  | Csp.Proc.Rename (a, mapping) ->
    Format.fprintf ppf "%a[[%a]]" pp_atom a
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (x, y) -> Format.fprintf ppf "%s <- %s" x y))
      mapping
  | Csp.Proc.If (c, a, b) ->
    Format.fprintf ppf "if %a then %a else %a" Csp.Expr.pp c pp_atom a
      pp_atom b
  | Csp.Proc.Guard (c, a) ->
    Format.fprintf ppf "%a & %a" Csp.Expr.pp c pp_atom a
  | Csp.Proc.Call (f, []) -> Format.pp_print_string ppf f
  | Csp.Proc.Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f Csp.Expr.pp_list args
  | Csp.Proc.Ext_over (x, s, a) ->
    Format.fprintf ppf "[] %s : %a @@ %a" x Csp.Expr.pp s pp_atom a
  | Csp.Proc.Int_over (x, s, a) ->
    Format.fprintf ppf "|~| %s : %a @@ %a" x Csp.Expr.pp s pp_atom a
  | Csp.Proc.Inter_over (x, s, a) ->
    Format.fprintf ppf "||| %s : %a @@ %a" x Csp.Expr.pp s pp_atom a
  | Csp.Proc.Run set -> Format.fprintf ppf "RUN(%a)" pp_eventset set
  | Csp.Proc.Chaos set -> Format.fprintf ppf "CHAOS(%a)" pp_eventset set

and pp_atom ppf p =
  match Csp.Proc.view p with
  | Csp.Proc.Stop | Csp.Proc.Skip | Csp.Proc.Omega | Csp.Proc.Call _
  | Csp.Proc.Run _ | Csp.Proc.Chaos _ ->
    pp_proc ppf p
  | _ -> Format.fprintf ppf "(%a)" pp_proc p

let proc_to_string p = Format.asprintf "%a" pp_proc p

let rec pp_term ppf (t : Ast.term) =
  match t with
  | Ast.T_num n -> Format.pp_print_int ppf n
  | Ast.T_bool b -> Format.pp_print_bool ppf b
  | Ast.T_id x -> Format.pp_print_string ppf x
  | Ast.T_dot (a, b) -> Format.fprintf ppf "%a.%a" pp_term a pp_term b
  | Ast.T_app (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      args
  | Ast.T_tuple items ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      items
  | Ast.T_set items ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      items
  | Ast.T_range (a, b) -> Format.fprintf ppf "{%a..%a}" pp_term a pp_term b
  | Ast.T_chanset items ->
    Format.fprintf ppf "{|%a|}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      items
  | Ast.T_neg a -> Format.fprintf ppf "-(%a)" pp_term a
  | Ast.T_not a -> Format.fprintf ppf "not (%a)" pp_term a
  | Ast.T_bin (op, a, b) ->
    let name =
      match op with
      | Ast.B_add -> "+" | Ast.B_sub -> "-" | Ast.B_mul -> "*"
      | Ast.B_div -> "/" | Ast.B_mod -> "%" | Ast.B_eq -> "=="
      | Ast.B_neq -> "!=" | Ast.B_lt -> "<" | Ast.B_le -> "<="
      | Ast.B_gt -> ">" | Ast.B_ge -> ">=" | Ast.B_and -> "and"
      | Ast.B_or -> "or"
    in
    Format.fprintf ppf "(%a %s %a)" pp_term a name pp_term b
  | Ast.T_if (c, a, b) ->
    Format.fprintf ppf "if %a then %a else %a" pp_term c pp_term a pp_term b
  | Ast.T_stop -> Format.pp_print_string ppf "STOP"
  | Ast.T_skip -> Format.pp_print_string ppf "SKIP"
  | Ast.T_prefix ({ Ast.chan; fields }, cont) ->
    Format.pp_print_string ppf chan;
    List.iter
      (fun f ->
        match f with
        | Ast.F_out e -> Format.fprintf ppf "!%a" pp_term e
        | Ast.F_dot e -> Format.fprintf ppf ".%a" pp_term e
        | Ast.F_in (x, None) -> Format.fprintf ppf "?%s" x
        | Ast.F_in (x, Some s) -> Format.fprintf ppf "?%s:%a" x pp_term s)
      fields;
    Format.fprintf ppf " -> %a" pp_term cont
  | Ast.T_extchoice (a, b) ->
    Format.fprintf ppf "(%a) [] (%a)" pp_term a pp_term b
  | Ast.T_intchoice (a, b) ->
    Format.fprintf ppf "(%a) |~| (%a)" pp_term a pp_term b
  | Ast.T_seq (a, b) -> Format.fprintf ppf "(%a); (%a)" pp_term a pp_term b
  | Ast.T_par (a, s, b) ->
    Format.fprintf ppf "(%a) [| %a |] (%a)" pp_term a pp_term s pp_term b
  | Ast.T_apar (a, sa, sb, b) ->
    Format.fprintf ppf "(%a) [ %a || %a ] (%a)" pp_term a pp_term sa pp_term
      sb pp_term b
  | Ast.T_interleave (a, b) ->
    Format.fprintf ppf "(%a) ||| (%a)" pp_term a pp_term b
  | Ast.T_interrupt (a, b) ->
    Format.fprintf ppf "(%a) /\\ (%a)" pp_term a pp_term b
  | Ast.T_slide (a, b) -> Format.fprintf ppf "(%a) [> (%a)" pp_term a pp_term b
  | Ast.T_hide (a, s) -> Format.fprintf ppf "(%a) \\ %a" pp_term a pp_term s
  | Ast.T_rename (a, mapping) ->
    Format.fprintf ppf "(%a)[[%a]]" pp_term a
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (x, y) -> Format.fprintf ppf "%s <- %s" x y))
      mapping
  | Ast.T_guard (c, p) -> Format.fprintf ppf "%a & (%a)" pp_term c pp_term p
  | Ast.T_repl (kind, x, s, body) ->
    let op =
      match kind with
      | Ast.R_ext -> "[]"
      | Ast.R_int -> "|~|"
      | Ast.R_inter -> "|||"
    in
    Format.fprintf ppf "%s %s : %a @@ (%a)" op x pp_term s pp_term body

let pp_assertion ppf (a : Ast.assertion) =
  match a with
  | Ast.A_refines (spec, Ast.M_traces, impl) ->
    Format.fprintf ppf "assert %a [T= %a" pp_term spec pp_term impl
  | Ast.A_refines (spec, Ast.M_failures, impl) ->
    Format.fprintf ppf "assert %a [F= %a" pp_term spec pp_term impl
  | Ast.A_refines (spec, Ast.M_failures_divergences, impl) ->
    Format.fprintf ppf "assert %a [FD= %a" pp_term spec pp_term impl
  | Ast.A_deadlock_free p ->
    Format.fprintf ppf "assert %a :[deadlock free]" pp_term p
  | Ast.A_divergence_free p ->
    Format.fprintf ppf "assert %a :[divergence free]" pp_term p
  | Ast.A_deterministic p ->
    Format.fprintf ppf "assert %a :[deterministic]" pp_term p

let script ?header ?(assertions = []) defs =
  let buf = Buffer.create 4096 in
  let out fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  (match header with
   | None -> ()
   | Some text ->
     String.split_on_char '\n' text
     |> List.iter (fun line -> out "-- %s\n" line);
     out "\n");
  let nametypes = Csp.Defs.nametypes defs in
  List.iter
    (fun (name, ty) -> out "nametype %s = %a\n" name pp_ty ty)
    nametypes;
  let datatypes = Csp.Defs.datatypes defs in
  List.iter
    (fun (name, ctors) ->
      let pp_ctor ppf (c, tys) =
        Format.pp_print_string ppf c;
        List.iter (fun ty -> Format.fprintf ppf ".%a" pp_ty ty) tys
      in
      out "datatype %s = %a\n" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
           pp_ctor)
        ctors)
    datatypes;
  if nametypes <> [] || datatypes <> [] then out "\n";
  List.iter
    (fun (chan, tys) ->
      match tys with
      | [] -> out "channel %s\n" chan
      | _ ->
        out "channel %s : %a\n" chan
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ".")
             pp_ty)
          tys)
    (Csp.Defs.channels defs);
  out "\n";
  List.iter
    (fun (name, (params, body)) ->
      match params with
      | [] -> out "%s = %a\n" name Csp.Expr.pp body
      | _ ->
        out "%s(%s) = %a\n" name (String.concat ", " params) Csp.Expr.pp body)
    (Csp.Defs.funcs defs);
  List.iter
    (fun (name, (params, body)) ->
      match params with
      | [] -> out "%s = %a\n" name pp_proc body
      | _ -> out "%s(%s) = %a\n" name (String.concat ", " params) pp_proc body)
    (Csp.Defs.procs defs);
  if assertions <> [] then begin
    out "\n";
    List.iter (fun a -> out "%a\n" pp_assertion a) assertions
  end;
  Buffer.contents buf
