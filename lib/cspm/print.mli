(** CSPm emission.

    Renders engine objects ({!Csp.Proc.t}, {!Csp.Defs.t}) as CSPm source
    text that {!Parser} accepts and {!Elaborate} loads back to an equivalent
    environment — the round-trip the test suite checks. This is the
    StringTemplate-output stage of the paper's pipeline: the model extractor
    produces a [Csp.Defs.t] and this module turns it into the [.csp] script
    of Fig. 3. *)

val pp_proc : Format.formatter -> Csp.Proc.t -> unit
(** Fully parenthesized CSPm process syntax. *)

val proc_to_string : Csp.Proc.t -> string

val pp_eventset : Format.formatter -> Csp.Eventset.t -> unit

val pp_ty : Format.formatter -> Csp.Ty.t -> unit

val pp_assertion : Format.formatter -> Ast.assertion -> unit

val pp_term : Format.formatter -> Ast.term -> unit
(** Render a parsed term back to source (used for assertion reports). *)

val script :
  ?header:string ->
  ?assertions:Ast.assertion list ->
  Csp.Defs.t ->
  string
(** Render a whole environment as a CSPm script: channel declarations,
    datatypes, nametypes, function and process definitions, then [assert]
    lines. [header] is emitted as a leading [--] comment block. *)
