(** Recursive-descent parser for the CSPm subset.

    Operator precedence follows FDR (loosest to tightest): hiding [\ ],
    parallel composition ([[|A|]], [[A||B]], [|||]), external/internal
    choice, sequential composition [;], boolean guard [&], event prefix
    [->], postfix renaming [[[a <- b]]]. Scalar expressions use the usual
    arithmetic/comparison/boolean precedence. One [term] grammar covers
    processes and expressions; [Elaborate] disambiguates. *)

exception Parse_error of string * Ast.pos

val script : string -> Ast.script
(** Parse a whole script.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)

val term : string -> Ast.term
(** Parse a single process/expression term (used by tests and the
    [cspm_check] CLI's [--eval] mode). *)
