type token =
  | IDENT of string
  | NUM of int
  | KW_channel
  | KW_datatype
  | KW_nametype
  | KW_assert
  | KW_if
  | KW_then
  | KW_else
  | KW_not
  | KW_and
  | KW_or
  | KW_true
  | KW_false
  | KW_stop
  | KW_skip
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | LCHANSET
  | RCHANSET
  | LINTERFACE
  | RINTERFACE
  | EXTCHOICE
  | INTCHOICE
  | INTERLEAVE
  | PARBAR
  | LRENAME
  | RRENAME
  | REFINES_T
  | REFINES_F
  | REFINES_FD
  | INTERRUPT_OP
  | SLIDE
  | COLON_LBRACKET
  | ARROW
  | LARROW
  | SEMI
  | AMP
  | AT
  | COMMA
  | COLON
  | EQUALS
  | DOT
  | DOTDOT
  | QUESTION
  | BANG
  | BACKSLASH
  | PIPE
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | NEQ | LT | LE | GT | GE
  | EOF

exception Lex_error of string * Ast.pos

let keyword = function
  | "channel" -> Some KW_channel
  | "datatype" -> Some KW_datatype
  | "nametype" -> Some KW_nametype
  | "assert" -> Some KW_assert
  | "if" -> Some KW_if
  | "then" -> Some KW_then
  | "else" -> Some KW_else
  | "not" -> Some KW_not
  | "and" -> Some KW_and
  | "or" -> Some KW_or
  | "true" -> Some KW_true
  | "false" -> Some KW_false
  | "STOP" -> Some KW_stop
  | "SKIP" -> Some KW_skip
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokens src =
  let n = String.length src in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let pos () = { Ast.line = !line; Ast.col = !col } in
  let fail msg = raise (Lex_error (msg, pos ())) in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (match src.[!i] with
     | '\n' ->
       incr line;
       col := 1
     | _ -> incr col);
    incr i
  in
  let advance_n k =
    for _ = 1 to k do
      advance ()
    done
  in
  let rec skip_block_comment depth start_pos =
    if !i >= n then
      raise (Lex_error ("unterminated block comment", start_pos))
    else if peek 0 = Some '{' && peek 1 = Some '-' then begin
      advance_n 2;
      skip_block_comment (depth + 1) start_pos
    end
    else if peek 0 = Some '-' && peek 1 = Some '}' then begin
      advance_n 2;
      if depth > 1 then skip_block_comment (depth - 1) start_pos
    end
    else begin
      advance ();
      skip_block_comment depth start_pos
    end
  in
  let acc = ref [] in
  let emit tok p = acc := (tok, p) :: !acc in
  let rec loop () =
    if !i >= n then emit EOF (pos ())
    else begin
      let c = src.[!i] in
      let p = pos () in
      (match c with
       | ' ' | '\t' | '\r' | '\n' -> advance ()
       | '-' when peek 1 = Some '-' ->
         (* line comment *)
         while !i < n && src.[!i] <> '\n' do
           advance ()
         done
       | '{' when peek 1 = Some '-' ->
         advance_n 2;
         skip_block_comment 1 p
       | '{' when peek 1 = Some '|' ->
         advance_n 2;
         emit LCHANSET p
       | '{' ->
         advance ();
         emit LBRACE p
       | '}' ->
         advance ();
         emit RBRACE p
       | '|' when peek 1 = Some '}' ->
         advance_n 2;
         emit RCHANSET p
       | '|' when peek 1 = Some ']' ->
         advance_n 2;
         emit RINTERFACE p
       | '|' when peek 1 = Some '~' && peek 2 = Some '|' ->
         advance_n 3;
         emit INTCHOICE p
       | '|' when peek 1 = Some '|' && peek 2 = Some '|' ->
         advance_n 3;
         emit INTERLEAVE p
       | '|' when peek 1 = Some '|' ->
         advance_n 2;
         emit PARBAR p
       | '|' ->
         advance ();
         emit PIPE p
       | '[' when peek 1 = Some '|' ->
         advance_n 2;
         emit LINTERFACE p
       | '[' when peek 1 = Some ']' ->
         advance_n 2;
         emit EXTCHOICE p
       | '[' when peek 1 = Some '[' ->
         advance_n 2;
         emit LRENAME p
       | '[' when peek 1 = Some 'T' && peek 2 = Some '=' ->
         advance_n 3;
         emit REFINES_T p
       | '[' when peek 1 = Some 'F' && peek 2 = Some 'D' && peek 3 = Some '='
         ->
         advance_n 4;
         emit REFINES_FD p
       | '[' when peek 1 = Some 'F' && peek 2 = Some '=' ->
         advance_n 3;
         emit REFINES_F p
       | '[' when peek 1 = Some '>' ->
         advance_n 2;
         emit SLIDE p
       | '[' ->
         advance ();
         emit LBRACKET p
       | ']' when peek 1 = Some ']' ->
         advance_n 2;
         emit RRENAME p
       | ']' ->
         advance ();
         emit RBRACKET p
       | ':' when peek 1 = Some '[' ->
         advance_n 2;
         emit COLON_LBRACKET p
       | ':' ->
         advance ();
         emit COLON p
       | '-' when peek 1 = Some '>' ->
         advance_n 2;
         emit ARROW p
       | '-' ->
         advance ();
         emit MINUS p
       | '<' when peek 1 = Some '-' ->
         advance_n 2;
         emit LARROW p
       | '<' when peek 1 = Some '=' ->
         advance_n 2;
         emit LE p
       | '<' ->
         advance ();
         emit LT p
       | '>' when peek 1 = Some '=' ->
         advance_n 2;
         emit GE p
       | '>' ->
         advance ();
         emit GT p
       | '=' when peek 1 = Some '=' ->
         advance_n 2;
         emit EQEQ p
       | '=' ->
         advance ();
         emit EQUALS p
       | '!' when peek 1 = Some '=' ->
         advance_n 2;
         emit NEQ p
       | '!' ->
         advance ();
         emit BANG p
       | '.' when peek 1 = Some '.' ->
         advance_n 2;
         emit DOTDOT p
       | '.' ->
         advance ();
         emit DOT p
       | '(' ->
         advance ();
         emit LPAREN p
       | ')' ->
         advance ();
         emit RPAREN p
       | ';' ->
         advance ();
         emit SEMI p
       | '&' ->
         advance ();
         emit AMP p
       | '@' ->
         advance ();
         emit AT p
       | ',' ->
         advance ();
         emit COMMA p
       | '?' ->
         advance ();
         emit QUESTION p
       | '/' when peek 1 = Some '\\' ->
         advance_n 2;
         emit INTERRUPT_OP p
       | '\\' ->
         advance ();
         emit BACKSLASH p
       | '+' ->
         advance ();
         emit PLUS p
       | '*' ->
         advance ();
         emit STAR p
       | '/' ->
         advance ();
         emit SLASH p
       | '%' ->
         advance ();
         emit PERCENT p
       | c when is_digit c ->
         let start = !i in
         while !i < n && is_digit src.[!i] do
           advance ()
         done;
         let text = String.sub src start (!i - start) in
         (match int_of_string_opt text with
          | Some v -> emit (NUM v) p
          | None ->
            raise
              (Lex_error
                 (Printf.sprintf "integer literal %s out of range" text, p)))
       | c when is_ident_start c ->
         let start = !i in
         while !i < n && is_ident_char src.[!i] do
           advance ()
         done;
         let name = String.sub src start (!i - start) in
         (match keyword name with
          | Some kw -> emit kw p
          | None -> emit (IDENT name) p)
       | c -> fail (Printf.sprintf "unexpected character %C" c));
      if
        match !acc with
        | (EOF, _) :: _ -> false
        | _ -> true
      then loop ()
    end
  in
  loop ();
  (match !acc with
   | (EOF, _) :: _ -> ()
   | _ -> emit EOF (pos ()));
  List.rev !acc

let token_to_string = function
  | IDENT s -> s
  | NUM n -> string_of_int n
  | KW_channel -> "channel"
  | KW_datatype -> "datatype"
  | KW_nametype -> "nametype"
  | KW_assert -> "assert"
  | KW_if -> "if"
  | KW_then -> "then"
  | KW_else -> "else"
  | KW_not -> "not"
  | KW_and -> "and"
  | KW_or -> "or"
  | KW_true -> "true"
  | KW_false -> "false"
  | KW_stop -> "STOP"
  | KW_skip -> "SKIP"
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | LCHANSET -> "{|" | RCHANSET -> "|}"
  | LINTERFACE -> "[|" | RINTERFACE -> "|]"
  | EXTCHOICE -> "[]"
  | INTCHOICE -> "|~|"
  | INTERLEAVE -> "|||"
  | PARBAR -> "||"
  | LRENAME -> "[[" | RRENAME -> "]]"
  | REFINES_T -> "[T="
  | REFINES_F -> "[F="
  | REFINES_FD -> "[FD="
  | INTERRUPT_OP -> "/\\"
  | SLIDE -> "[>"
  | COLON_LBRACKET -> ":["
  | ARROW -> "->"
  | LARROW -> "<-"
  | SEMI -> ";"
  | AMP -> "&"
  | AT -> "@"
  | COMMA -> ","
  | COLON -> ":"
  | EQUALS -> "="
  | DOT -> "."
  | DOTDOT -> ".."
  | QUESTION -> "?"
  | BANG -> "!"
  | BACKSLASH -> "\\"
  | PIPE -> "|"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQEQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EOF -> "<eof>"
