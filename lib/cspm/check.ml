type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

let run_assertion ?max_states ?deadline (loaded : Elaborate.t)
    (a : Ast.assertion) =
  let defs = loaded.Elaborate.defs in
  match a with
  | Ast.A_refines (spec_t, model, impl_t) ->
    let spec = Elaborate.proc_of_term loaded spec_t in
    let impl = Elaborate.proc_of_term loaded impl_t in
    let model =
      match model with
      | Ast.M_traces -> Csp.Refine.Traces
      | Ast.M_failures -> Csp.Refine.Failures
      | Ast.M_failures_divergences -> Csp.Refine.Failures_divergences
    in
    Csp.Refine.check ~model ?max_states ?deadline defs ~spec ~impl
  | Ast.A_deadlock_free t ->
    Csp.Refine.deadlock_free ?max_states ?deadline defs
      (Elaborate.proc_of_term loaded t)
  | Ast.A_divergence_free t ->
    Csp.Refine.divergence_free ?max_states ?deadline defs
      (Elaborate.proc_of_term loaded t)
  | Ast.A_deterministic t ->
    Csp.Refine.deterministic ?max_states ?deadline defs
      (Elaborate.proc_of_term loaded t)

let run ?max_states ?deadline (loaded : Elaborate.t) =
  (* the deadline is a per-run budget: split it evenly so one hard
     assertion cannot starve the ones after it of all wall-clock *)
  let n = List.length loaded.Elaborate.assertions in
  let deadline =
    match deadline with
    | Some d when n > 1 -> Some (d /. float_of_int n)
    | other -> other
  in
  List.map
    (fun (assertion, pos) ->
      {
        assertion;
        pos = Some pos;
        result = run_assertion ?max_states ?deadline loaded assertion;
      })
    loaded.Elaborate.assertions

let all_pass outcomes =
  List.for_all (fun o -> Csp.Refine.holds o.result) outcomes

let any_fails outcomes =
  List.exists
    (fun o ->
      match o.result with Csp.Refine.Fails _ -> true | _ -> false)
    outcomes

let any_inconclusive outcomes =
  List.exists (fun o -> Csp.Refine.inconclusive o.result) outcomes

let pp_outcome ppf o =
  let status =
    match o.result with
    | Csp.Refine.Holds _ -> "PASS"
    | Csp.Refine.Fails _ -> "FAIL"
    | Csp.Refine.Inconclusive _ -> "INCONCLUSIVE"
  in
  Format.fprintf ppf "@[<v 2>[%s] %a@ %a@]" status Print.pp_assertion
    o.assertion Csp.Refine.pp_result o.result

let pp_outcomes ppf outcomes =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    pp_outcome ppf outcomes
