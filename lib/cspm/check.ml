type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

(* An assertion with its process terms elaborated up front. Elaboration
   mutates nothing but builds terms through the hash-consing constructors;
   doing it eagerly on the calling domain keeps the parallel scheduling
   below confined to the (domain-safe) refinement engine. *)
type prepared =
  | P_refines of Csp.Proc.t * Csp.Refine.model * Csp.Proc.t
  | P_deadlock_free of Csp.Proc.t
  | P_divergence_free of Csp.Proc.t
  | P_deterministic of Csp.Proc.t

let prepare (loaded : Elaborate.t) (a : Ast.assertion) =
  match a with
  | Ast.A_refines (spec_t, model, impl_t) ->
    let spec = Elaborate.proc_of_term loaded spec_t in
    let impl = Elaborate.proc_of_term loaded impl_t in
    let model =
      match model with
      | Ast.M_traces -> Csp.Refine.Traces
      | Ast.M_failures -> Csp.Refine.Failures
      | Ast.M_failures_divergences -> Csp.Refine.Failures_divergences
    in
    P_refines (spec, model, impl)
  | Ast.A_deadlock_free t -> P_deadlock_free (Elaborate.proc_of_term loaded t)
  | Ast.A_divergence_free t ->
    P_divergence_free (Elaborate.proc_of_term loaded t)
  | Ast.A_deterministic t -> P_deterministic (Elaborate.proc_of_term loaded t)

let run_prepared ?(config = Csp.Check_config.default) defs prepared =
  match prepared with
  | P_refines (spec, model, impl) ->
    Csp.Refine.check ~config ~model defs ~spec ~impl
  | P_deadlock_free p -> Csp.Refine.deadlock_free ~config defs p
  | P_divergence_free p -> Csp.Refine.divergence_free ~config defs p
  | P_deterministic p -> Csp.Refine.deterministic ~config defs p

let run_assertion ?config (loaded : Elaborate.t) (a : Ast.assertion) =
  run_prepared ?config loaded.Elaborate.defs (prepare loaded a)

(* The per-assertion share of the remaining wall-clock budget. Recomputed
   before each assertion, so budget a fast assertion leaves unused rolls
   forward to the ones after it instead of being thrown away. An already
   overspent budget clamps to a zero slice, never a negative one. *)
let slice ~remaining_wall ~remaining =
  if remaining <= 0 then remaining_wall
  else max 0. remaining_wall /. float_of_int remaining

(* Deadline runs are sequential: each assertion's slice depends on how
   much wall-clock the previous ones actually used. *)
let run_with_deadline ~(config : Csp.Check_config.t) ~total
    (loaded : Elaborate.t) =
  let n = List.length loaded.Elaborate.assertions in
  let t0 = Obs.now () in
  List.mapi
    (fun i (assertion, pos) ->
      let remaining_wall = total -. (Obs.now () -. t0) in
      let deadline = slice ~remaining_wall ~remaining:(n - i) in
      let config = Csp.Check_config.with_deadline deadline config in
      {
        assertion;
        pos = Some pos;
        result =
          Obs.span config.Csp.Check_config.obs "check.assertion" (fun () ->
              run_assertion ~config loaded assertion);
      })
    loaded.Elaborate.assertions

(* Without a deadline the assertions are independent, so idle domains can
   take whole assertions: [concurrent] of them run at once, each with an
   equal share of the worker pool for its own product search. Results are
   reported in script order regardless of completion order. *)
let run_concurrent ~(config : Csp.Check_config.t) (loaded : Elaborate.t) =
  let workers = config.Csp.Check_config.workers in
  let assertions = Array.of_list loaded.Elaborate.assertions in
  let n = Array.length assertions in
  let prepared =
    Array.map (fun (a, _) -> prepare loaded a) assertions
  in
  let concurrent = min workers n in
  let per_assertion = max 1 (workers / concurrent) in
  let config = Csp.Check_config.with_workers per_assertion config in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let task () =
    let rec grab () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          Some
            (try Ok (run_prepared ~config loaded.Elaborate.defs prepared.(i))
             with e -> Error e);
        grab ()
      end
    in
    grab ()
  in
  let domains =
    List.init (concurrent - 1) (fun _ -> Domain.spawn task)
  in
  task ();
  List.iter Domain.join domains;
  Array.to_list
    (Array.mapi
       (fun i (assertion, pos) ->
         match results.(i) with
         | Some (Ok result) -> { assertion; pos = Some pos; result }
         | Some (Error e) -> raise e
         | None -> invalid_arg "Check.run: worker left a result slot empty")
       assertions)

let run ?(config = Csp.Check_config.default) (loaded : Elaborate.t) =
  let config =
    Csp.Check_config.with_workers
      (max 1 config.Csp.Check_config.workers)
      config
  in
  let n = List.length loaded.Elaborate.assertions in
  match config.Csp.Check_config.deadline with
  | Some total ->
    run_with_deadline ~config ~total loaded
  | None ->
    if config.Csp.Check_config.workers > 1 && n > 1 then
      run_concurrent ~config loaded
    else
      List.map
        (fun (assertion, pos) ->
          {
            assertion;
            pos = Some pos;
            result =
              Obs.span config.Csp.Check_config.obs "check.assertion"
                (fun () -> run_assertion ~config loaded assertion);
          })
        loaded.Elaborate.assertions

let all_pass outcomes =
  List.for_all (fun o -> Csp.Refine.holds o.result) outcomes

let any_fails outcomes =
  List.exists
    (fun o ->
      match o.result with Csp.Refine.Fails _ -> true | _ -> false)
    outcomes

let any_inconclusive outcomes =
  List.exists (fun o -> Csp.Refine.inconclusive o.result) outcomes

(* The machine-readable face of [pp_outcomes]: the documented stable
   schema behind [cspm_check --format json]. Verdict names, field names,
   and the counts in "summary" are part of the contract; new fields may
   be added but existing ones keep their meaning. *)
let json_of_outcomes outcomes =
  let open Obs.Json in
  let num n = Num (float_of_int n) in
  let labels ls = List (List.map (fun l -> Str (Csp.Event.label_to_string l)) ls) in
  let stats_json (s : Csp.Refine.stats) =
    Obj
      [
        "impl_states", num s.Csp.Refine.impl_states;
        "spec_nodes", num s.Csp.Refine.spec_nodes;
        "pairs", num s.Csp.Refine.pairs;
        "wall_s", Num s.Csp.Refine.wall_s;
        "states_per_sec", Num s.Csp.Refine.states_per_sec;
        "peak_frontier", num s.Csp.Refine.peak_frontier;
        "workers", num s.Csp.Refine.workers;
        "par_speedup", Num s.Csp.Refine.par_speedup;
      ]
  in
  let outcome_json i o =
    let base =
      [
        "index", num i;
        "assertion", Str (Format.asprintf "%a" Print.pp_assertion o.assertion);
      ]
      @ (match o.pos with
         | Some p ->
           [ "line", num p.Ast.line; "col", num p.Ast.col ]
         | None -> [])
    in
    let rest =
      match o.result with
      | Csp.Refine.Holds stats ->
        [ "verdict", Str "pass"; "stats", stats_json stats ]
      | Csp.Refine.Fails cex ->
        [
          "verdict", Str "fail";
          ( "counterexample",
            Obj
              [
                "trace", labels cex.Csp.Refine.trace;
                ( "violation",
                  Str
                    (Format.asprintf "%a" Csp.Refine.pp_violation
                       cex.Csp.Refine.violation) );
              ] );
        ]
      | Csp.Refine.Inconclusive (stats, hint) ->
        [
          "verdict", Str "inconclusive";
          "stats", stats_json stats;
          ( "resume_hint",
            Obj
              [
                "frontier", num hint.Csp.Refine.frontier;
                ( "exhausted",
                  Str
                    (match hint.Csp.Refine.exhausted with
                     | Csp.Refine.Deadline -> "deadline"
                     | Csp.Refine.States -> "states"
                     | Csp.Refine.Pairs -> "pairs") );
                "deepest", labels hint.Csp.Refine.deepest;
              ] );
        ]
    in
    Obj (base @ rest)
  in
  let count p = List.length (List.filter p outcomes) in
  Obj
    [
      "schema", Str "cspm-check/1";
      "assertions", List (List.mapi outcome_json outcomes);
      ( "summary",
        Obj
          [
            "total", num (List.length outcomes);
            ( "passed",
              num
                (count (fun o -> Csp.Refine.holds o.result)) );
            ( "failed",
              num
                (count (fun o ->
                     match o.result with
                     | Csp.Refine.Fails _ -> true
                     | _ -> false)) );
            ( "inconclusive",
              num (count (fun o -> Csp.Refine.inconclusive o.result)) );
          ] );
    ]

let pp_outcome ppf o =
  let status =
    match o.result with
    | Csp.Refine.Holds _ -> "PASS"
    | Csp.Refine.Fails _ -> "FAIL"
    | Csp.Refine.Inconclusive _ -> "INCONCLUSIVE"
  in
  Format.fprintf ppf "@[<v 2>[%s] %a@ %a@]" status Print.pp_assertion
    o.assertion Csp.Refine.pp_result o.result

let pp_outcomes ppf outcomes =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    pp_outcome ppf outcomes
