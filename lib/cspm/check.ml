type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

(* An assertion with its process terms elaborated up front. Elaboration
   mutates nothing but builds terms through the hash-consing constructors;
   doing it eagerly on the calling domain keeps the parallel scheduling
   below confined to the (domain-safe) refinement engine. *)
type prepared =
  | P_refines of Csp.Proc.t * Csp.Refine.model * Csp.Proc.t
  | P_deadlock_free of Csp.Proc.t
  | P_divergence_free of Csp.Proc.t
  | P_deterministic of Csp.Proc.t

let prepare (loaded : Elaborate.t) (a : Ast.assertion) =
  match a with
  | Ast.A_refines (spec_t, model, impl_t) ->
    let spec = Elaborate.proc_of_term loaded spec_t in
    let impl = Elaborate.proc_of_term loaded impl_t in
    let model =
      match model with
      | Ast.M_traces -> Csp.Refine.Traces
      | Ast.M_failures -> Csp.Refine.Failures
      | Ast.M_failures_divergences -> Csp.Refine.Failures_divergences
    in
    P_refines (spec, model, impl)
  | Ast.A_deadlock_free t -> P_deadlock_free (Elaborate.proc_of_term loaded t)
  | Ast.A_divergence_free t ->
    P_divergence_free (Elaborate.proc_of_term loaded t)
  | Ast.A_deterministic t -> P_deterministic (Elaborate.proc_of_term loaded t)

let run_prepared ?(config = Csp.Check_config.default) ?resume defs prepared =
  match resume, prepared with
  | Some cp, P_refines (spec, model, impl) ->
    Csp.Refine.resume ~config ~model ~checkpoint:cp defs ~spec ~impl
  | Some cp, P_deterministic p ->
    Csp.Refine.resume_deterministic ~config ~checkpoint:cp defs p
  | _, P_refines (spec, model, impl) ->
    Csp.Refine.check ~config ~model defs ~spec ~impl
  (* The graph checks never emit a checkpoint (a budgeted compile just
     re-runs), so a stale [resume] for them falls through to a fresh run. *)
  | _, P_deadlock_free p -> Csp.Refine.deadlock_free ~config defs p
  | _, P_divergence_free p -> Csp.Refine.divergence_free ~config defs p
  | _, P_deterministic p -> Csp.Refine.deterministic ~config defs p

let run_assertion ?config (loaded : Elaborate.t) (a : Ast.assertion) =
  run_prepared ?config loaded.Elaborate.defs (prepare loaded a)

(* The per-assertion share of the remaining wall-clock budget. Recomputed
   before each assertion, so budget a fast assertion leaves unused rolls
   forward to the ones after it instead of being thrown away. An already
   overspent budget clamps to a zero slice, never a negative one. *)
let slice ~remaining_wall ~remaining =
  if remaining <= 0 then remaining_wall
  else max 0. remaining_wall /. float_of_int remaining

(* Deadline runs are sequential: each assertion's slice depends on how
   much wall-clock the previous ones actually used. *)
let run_with_deadline ~(config : Csp.Check_config.t) ~total
    (loaded : Elaborate.t) =
  let n = List.length loaded.Elaborate.assertions in
  let t0 = Obs.now () in
  List.mapi
    (fun i (assertion, pos) ->
      let remaining_wall = total -. (Obs.now () -. t0) in
      let deadline = slice ~remaining_wall ~remaining:(n - i) in
      let config = Csp.Check_config.with_deadline deadline config in
      {
        assertion;
        pos = Some pos;
        result =
          Obs.span config.Csp.Check_config.obs "check.assertion" (fun () ->
              run_assertion ~config loaded assertion);
      })
    loaded.Elaborate.assertions

(* Without a deadline the assertions are independent, so idle domains can
   take whole assertions: [concurrent] of them run at once, each with an
   equal share of the worker pool for its own product search. Results are
   reported in script order regardless of completion order. *)
let run_concurrent ~(config : Csp.Check_config.t) (loaded : Elaborate.t) =
  let workers = config.Csp.Check_config.workers in
  let assertions = Array.of_list loaded.Elaborate.assertions in
  let n = Array.length assertions in
  let prepared =
    Array.map (fun (a, _) -> prepare loaded a) assertions
  in
  let concurrent = min workers n in
  let per_assertion = max 1 (workers / concurrent) in
  let config = Csp.Check_config.with_workers per_assertion config in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let task () =
    let rec grab () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          Some
            (try Ok (run_prepared ~config loaded.Elaborate.defs prepared.(i))
             with e -> Error e);
        grab ()
      end
    in
    grab ()
  in
  let domains =
    List.init (concurrent - 1) (fun _ -> Domain.spawn task)
  in
  task ();
  List.iter Domain.join domains;
  Array.to_list
    (Array.mapi
       (fun i (assertion, pos) ->
         match results.(i) with
         | Some (Ok result) -> { assertion; pos = Some pos; result }
         | Some (Error e) -> raise e
         | None -> invalid_arg "Check.run: worker left a result slot empty")
       assertions)

let run ?(config = Csp.Check_config.default) (loaded : Elaborate.t) =
  let config =
    Csp.Check_config.with_workers
      (max 1 config.Csp.Check_config.workers)
      config
  in
  let n = List.length loaded.Elaborate.assertions in
  match config.Csp.Check_config.deadline with
  | Some total ->
    run_with_deadline ~config ~total loaded
  | None ->
    if config.Csp.Check_config.workers > 1 && n > 1 then
      run_concurrent ~config loaded
    else
      List.map
        (fun (assertion, pos) ->
          {
            assertion;
            pos = Some pos;
            result =
              Obs.span config.Csp.Check_config.obs "check.assertion"
                (fun () -> run_assertion ~config loaded assertion);
          })
        loaded.Elaborate.assertions

let all_pass outcomes =
  List.for_all (fun o -> Csp.Refine.holds o.result) outcomes

let any_fails outcomes =
  List.exists
    (fun o ->
      match o.result with Csp.Refine.Fails _ -> true | _ -> false)
    outcomes

let any_inconclusive outcomes =
  List.exists (fun o -> Csp.Refine.inconclusive o.result) outcomes

(* The machine-readable face of [pp_outcomes]: the documented stable
   schema behind [cspm_check --format json]. Verdict names, field names,
   and the counts in "summary" are part of the contract; new fields may
   be added but existing ones keep their meaning. *)
let json_of_outcome i o =
  let open Obs.Json in
  let num n = Num (float_of_int n) in
  let labels ls = List (List.map (fun l -> Str (Csp.Event.label_to_string l)) ls) in
  let stats_json (s : Csp.Refine.stats) =
    Obj
      [
        "impl_states", num s.Csp.Refine.impl_states;
        "spec_nodes", num s.Csp.Refine.spec_nodes;
        "pairs", num s.Csp.Refine.pairs;
        "wall_s", Num s.Csp.Refine.wall_s;
        "states_per_sec", Num s.Csp.Refine.states_per_sec;
        "peak_frontier", num s.Csp.Refine.peak_frontier;
        "workers", num s.Csp.Refine.workers;
        "par_speedup", Num s.Csp.Refine.par_speedup;
        ( "reductions",
          List
            (List.map
               (fun (pass, before, after) ->
                 Obj
                   [
                     "pass", Str pass;
                     "states_before", num before;
                     "states_after", num after;
                   ])
               s.Csp.Refine.reductions) );
      ]
  in
  let base =
    [
      "index", num i;
      "assertion", Str (Format.asprintf "%a" Print.pp_assertion o.assertion);
    ]
    @ (match o.pos with
       | Some p ->
         [ "line", num p.Ast.line; "col", num p.Ast.col ]
       | None -> [])
  in
  let rest =
    match o.result with
    | Csp.Refine.Holds stats ->
      [ "verdict", Str "pass"; "stats", stats_json stats ]
    | Csp.Refine.Fails cex ->
      [
        "verdict", Str "fail";
        ( "counterexample",
          Obj
            [
              "trace", labels cex.Csp.Refine.trace;
              ( "violation",
                Str
                  (Format.asprintf "%a" Csp.Refine.pp_violation
                     cex.Csp.Refine.violation) );
            ] );
      ]
    | Csp.Refine.Inconclusive (stats, hint) ->
      [
        "verdict", Str "inconclusive";
        "stats", stats_json stats;
        ( "resume_hint",
          Obj
            ([
               "frontier", num hint.Csp.Refine.frontier;
               ( "exhausted",
                 Str
                   (Csp.Search.budget_kind_to_string
                      hint.Csp.Refine.exhausted) );
               "deepest", labels hint.Csp.Refine.deepest;
             ]
            @
            match hint.Csp.Refine.checkpoint with
            | Some cp -> [ "checkpoint", Csp.Search.json_of_checkpoint cp ]
            | None -> []) );
      ]
  in
  Obj (base @ rest)

(* Assemble the "cspm-check/1" report from already-rendered outcome
   objects. Split out from [json_of_outcomes] so a resumed run can splice
   the outcomes recorded in its checkpoint (rendered by the interrupted
   process) in front of the ones it computed itself; the summary is
   recounted from the "verdict" fields either way. *)
let report_of_json_outcomes ?cache outcome_jsons =
  let open Obs.Json in
  let num n = Num (float_of_int n) in
  let verdict j =
    match member "verdict" j with Some (Str s) -> s | _ -> ""
  in
  let count v =
    List.length (List.filter (fun j -> String.equal (verdict j) v) outcome_jsons)
  in
  Obj
    ([
       "schema", Str "cspm-check/1";
       "assertions", List outcome_jsons;
       ( "summary",
         Obj
           [
             "total", num (List.length outcome_jsons);
             "passed", num (count "pass");
             "failed", num (count "fail");
             "inconclusive", num (count "inconclusive");
           ] );
     ]
    @
    match cache with
    | Some stats -> [ "cache", Csp.Cache.json_of_stats stats ]
    | None -> [])

let json_of_outcomes ?cache outcomes =
  report_of_json_outcomes ?cache (List.mapi json_of_outcome outcomes)

let pp_outcome ppf o =
  let status =
    match o.result with
    | Csp.Refine.Holds _ -> "PASS"
    | Csp.Refine.Fails _ -> "FAIL"
    | Csp.Refine.Inconclusive _ -> "INCONCLUSIVE"
  in
  Format.fprintf ppf "@[<v 2>[%s] %a@ %a@]" status Print.pp_assertion
    o.assertion Csp.Refine.pp_result o.result

let pp_outcomes ppf outcomes =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    pp_outcome ppf outcomes

(* ------------------------------------------------------------------ *)
(* Interruptible sequential runner + the "cspm-checkpoint/1" document  *)
(* ------------------------------------------------------------------ *)

type stop = {
  next_index : int;  (** the assertion that was interrupted *)
  search : Csp.Search.checkpoint option;
}

let run_seq ?(start = 0) ?resume_first ~(config : Csp.Check_config.t)
    (loaded : Elaborate.t) =
  let defs = loaded.Elaborate.defs in
  let assertions = Array.of_list loaded.Elaborate.assertions in
  (* Elaborate every assertion up front (cheap, hash-consed), so the loop
     below is purely compile-and-search — and with [config.cache] set,
     each assertion's spec/impl compilation is a content-addressed lookup
     before it is ever a compile. *)
  let prepared = Array.map (fun (a, _) -> prepare loaded a) assertions in
  let n = Array.length assertions in
  let t0 = Obs.now () in
  let rec go i acc =
    if i >= n then (List.rev acc, None)
    else begin
      let assertion, pos = assertions.(i) in
      let config =
        match config.Csp.Check_config.deadline with
        | Some total ->
          let remaining_wall = total -. (Obs.now () -. t0) in
          Csp.Check_config.with_deadline
            (slice ~remaining_wall ~remaining:(n - i))
            config
        | None -> config
      in
      let resume = if i = start then resume_first else None in
      let result =
        Obs.span config.Csp.Check_config.obs "check.assertion" (fun () ->
            run_prepared ~config ?resume defs prepared.(i))
      in
      let o = { assertion; pos = Some pos; result } in
      match result with
      | Csp.Refine.Inconclusive (_, hint)
        when hint.Csp.Refine.exhausted = Csp.Refine.Interrupt ->
        (* The interrupted outcome still joins the partial report, but the
           stop record excludes it from [completed]: resuming re-runs this
           assertion (from its engine checkpoint when one exists). *)
        ( List.rev (o :: acc),
          Some { next_index = i; search = hint.Csp.Refine.checkpoint } )
      | _ -> go (i + 1) (o :: acc)
    end
  in
  go start []

type resume_state = {
  script_digest : string;
  completed : Obs.Json.t list;
  next_index : int;
  search : Csp.Search.checkpoint option;
}

let checkpoint_schema = "cspm-checkpoint/1"

let json_of_resume_state st =
  let open Obs.Json in
  Obj
    [
      "schema", Str checkpoint_schema;
      "script_digest", Str st.script_digest;
      "completed", List st.completed;
      "next_index", Num (float_of_int st.next_index);
      ( "search",
        match st.search with
        | Some cp -> Csp.Search.json_of_checkpoint cp
        | None -> Null );
    ]

let resume_state_of_json json =
  let open Obs.Json in
  let str k = Option.bind (member k json) to_str in
  match str "schema" with
  | Some s when String.equal s checkpoint_schema -> begin
    match
      ( str "script_digest",
        member "completed" json,
        Option.bind (member "next_index" json) to_int,
        member "search" json )
    with
    | Some script_digest, Some (List completed), Some next_index, search
      when next_index >= 0 && List.length completed = next_index ->
      let search =
        match search with
        | None | Some Null -> Ok None
        | Some j -> Result.map Option.some (Csp.Search.checkpoint_of_json j)
      in
      Result.map
        (fun search -> { script_digest; completed; next_index; search })
        search
    | _ ->
      Error
        "cspm-checkpoint/1: malformed fields (need script_digest, \
         completed with exactly next_index entries, next_index >= 0)"
  end
  | _ -> Error "not a cspm-checkpoint/1 document"
