type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

(* An assertion with its process terms elaborated up front. Elaboration
   mutates nothing but builds terms through the hash-consing constructors;
   doing it eagerly on the calling domain keeps the parallel scheduling
   below confined to the (domain-safe) refinement engine. *)
type prepared =
  | P_refines of Csp.Proc.t * Csp.Refine.model * Csp.Proc.t
  | P_deadlock_free of Csp.Proc.t
  | P_divergence_free of Csp.Proc.t
  | P_deterministic of Csp.Proc.t

let prepare (loaded : Elaborate.t) (a : Ast.assertion) =
  match a with
  | Ast.A_refines (spec_t, model, impl_t) ->
    let spec = Elaborate.proc_of_term loaded spec_t in
    let impl = Elaborate.proc_of_term loaded impl_t in
    let model =
      match model with
      | Ast.M_traces -> Csp.Refine.Traces
      | Ast.M_failures -> Csp.Refine.Failures
      | Ast.M_failures_divergences -> Csp.Refine.Failures_divergences
    in
    P_refines (spec, model, impl)
  | Ast.A_deadlock_free t -> P_deadlock_free (Elaborate.proc_of_term loaded t)
  | Ast.A_divergence_free t ->
    P_divergence_free (Elaborate.proc_of_term loaded t)
  | Ast.A_deterministic t -> P_deterministic (Elaborate.proc_of_term loaded t)

let run_prepared ?max_states ?deadline ?workers defs prepared =
  match prepared with
  | P_refines (spec, model, impl) ->
    Csp.Refine.check ~model ?max_states ?deadline ?workers defs ~spec ~impl
  | P_deadlock_free p ->
    Csp.Refine.deadlock_free ?max_states ?deadline ?workers defs p
  | P_divergence_free p ->
    Csp.Refine.divergence_free ?max_states ?deadline ?workers defs p
  | P_deterministic p ->
    Csp.Refine.deterministic ?max_states ?deadline ?workers defs p

let run_assertion ?max_states ?deadline ?workers (loaded : Elaborate.t)
    (a : Ast.assertion) =
  run_prepared ?max_states ?deadline ?workers loaded.Elaborate.defs
    (prepare loaded a)

(* The per-assertion share of the remaining wall-clock budget. Recomputed
   before each assertion, so budget a fast assertion leaves unused rolls
   forward to the ones after it instead of being thrown away. An already
   overspent budget clamps to a zero slice, never a negative one. *)
let slice ~remaining_wall ~remaining =
  if remaining <= 0 then remaining_wall
  else max 0. remaining_wall /. float_of_int remaining

(* Deadline runs are sequential: each assertion's slice depends on how
   much wall-clock the previous ones actually used. *)
let run_with_deadline ?max_states ~total ~workers (loaded : Elaborate.t) =
  let n = List.length loaded.Elaborate.assertions in
  let t0 = Unix.gettimeofday () in
  List.mapi
    (fun i (assertion, pos) ->
      let remaining_wall = total -. (Unix.gettimeofday () -. t0) in
      let deadline = slice ~remaining_wall ~remaining:(n - i) in
      {
        assertion;
        pos = Some pos;
        result = run_assertion ?max_states ~deadline ~workers loaded assertion;
      })
    loaded.Elaborate.assertions

(* Without a deadline the assertions are independent, so idle domains can
   take whole assertions: [concurrent] of them run at once, each with an
   equal share of the worker pool for its own product search. Results are
   reported in script order regardless of completion order. *)
let run_concurrent ?max_states ~workers (loaded : Elaborate.t) =
  let assertions = Array.of_list loaded.Elaborate.assertions in
  let n = Array.length assertions in
  let prepared =
    Array.map (fun (a, _) -> prepare loaded a) assertions
  in
  let concurrent = min workers n in
  let per_assertion = max 1 (workers / concurrent) in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let task () =
    let rec grab () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          Some
            (try
               Ok
                 (run_prepared ?max_states ~workers:per_assertion
                    loaded.Elaborate.defs prepared.(i))
             with e -> Error e);
        grab ()
      end
    in
    grab ()
  in
  let domains =
    List.init (concurrent - 1) (fun _ -> Domain.spawn task)
  in
  task ();
  List.iter Domain.join domains;
  Array.to_list
    (Array.mapi
       (fun i (assertion, pos) ->
         match results.(i) with
         | Some (Ok result) -> { assertion; pos = Some pos; result }
         | Some (Error e) -> raise e
         | None -> assert false)
       assertions)

let run ?max_states ?deadline ?(workers = 1) (loaded : Elaborate.t) =
  let workers = max 1 workers in
  let n = List.length loaded.Elaborate.assertions in
  match deadline with
  | Some total -> run_with_deadline ?max_states ~total ~workers loaded
  | None ->
    if workers > 1 && n > 1 then run_concurrent ?max_states ~workers loaded
    else
      List.map
        (fun (assertion, pos) ->
          {
            assertion;
            pos = Some pos;
            result = run_assertion ?max_states ~workers loaded assertion;
          })
        loaded.Elaborate.assertions

let all_pass outcomes =
  List.for_all (fun o -> Csp.Refine.holds o.result) outcomes

let any_fails outcomes =
  List.exists
    (fun o ->
      match o.result with Csp.Refine.Fails _ -> true | _ -> false)
    outcomes

let any_inconclusive outcomes =
  List.exists (fun o -> Csp.Refine.inconclusive o.result) outcomes

let pp_outcome ppf o =
  let status =
    match o.result with
    | Csp.Refine.Holds _ -> "PASS"
    | Csp.Refine.Fails _ -> "FAIL"
    | Csp.Refine.Inconclusive _ -> "INCONCLUSIVE"
  in
  Format.fprintf ppf "@[<v 2>[%s] %a@ %a@]" status Print.pp_assertion
    o.assertion Csp.Refine.pp_result o.result

let pp_outcomes ppf outcomes =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    pp_outcome ppf outcomes
