(** Abstract syntax of the CSPm subset accepted by {!Parser}.

    A single [term] grammar covers both scalar expressions and process
    expressions, as in real CSPm, where the two share one namespace;
    {!Elaborate} decides which is which. Positions are byte-based with
    line/column for error reporting. *)

type pos = {
  line : int;
  col : int;
}

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

(** One field of a communication in a prefix. *)
type field =
  | F_out of term  (** [!e] *)
  | F_dot of term  (** [.e] *)
  | F_in of string * term option  (** [?x] or [?x:S] *)

and comm = {
  chan : string;
  fields : field list;
}

and term =
  | T_num of int
  | T_bool of bool
  | T_id of string
  | T_dot of term * term  (** dotted pair outside prefix position, [A.x] *)
  | T_app of string * term list
  | T_tuple of term list
  | T_set of term list
  | T_range of term * term  (** [{lo..hi}] *)
  | T_chanset of term list
      (** [{| c, d.1 |}] — channel productions, possibly with a value
          prefix *)
  | T_neg of term
  | T_not of term
  | T_bin of binop * term * term
  | T_if of term * term * term
  | T_stop
  | T_skip
  | T_prefix of comm * term
  | T_extchoice of term * term
  | T_intchoice of term * term
  | T_seq of term * term
  | T_par of term * term * term  (** [P [| A |] Q] *)
  | T_apar of term * term * term * term  (** [P [ A || B ] Q] *)
  | T_interleave of term * term
  | T_interrupt of term * term  (** [P /\ Q] *)
  | T_slide of term * term  (** [P [> Q] *)
  | T_hide of term * term
  | T_rename of term * (string * string) list
  | T_guard of term * term  (** [b & P] *)
  | T_repl of repl_kind * string * term * term  (** [[] x : S @ P] *)

and repl_kind =
  | R_ext
  | R_int
  | R_inter

and binop =
  | B_add | B_sub | B_mul | B_div | B_mod
  | B_eq | B_neq | B_lt | B_le | B_gt | B_ge
  | B_and | B_or

(** Type expressions in channel/datatype/nametype declarations. *)
type ty_expr =
  | TE_name of string
  | TE_range of int * int
  | TE_bool
  | TE_tuple of ty_expr list

type model =
  | M_traces  (** [[T=] *)
  | M_failures  (** [[F=] *)
  | M_failures_divergences  (** [[FD=] *)

type assertion =
  | A_refines of term * model * term
  | A_deadlock_free of term
  | A_divergence_free of term
  | A_deterministic of term

type decl =
  | D_channel of string list * ty_expr list  (** [channel c, d : T.U] *)
  | D_datatype of string * (string * ty_expr list) list
  | D_nametype of string * ty_expr
  | D_def of string * string list * term  (** [N(x, y) = body] *)
  | D_assert of assertion

type script = {
  decls : (decl * pos) list;
}
