(** Elaboration of a parsed CSPm script into a {!Csp.Defs.t} environment
    plus its [assert] declarations.

    CSPm keeps processes, functions and values in one namespace; this module
    classifies each top-level definition as a process or a function by a
    fixpoint over the definition graph: a body containing a process
    construct ([STOP], prefix, choice, parallel, ...) is a process, a body
    whose head is a reference inherits the referent's class, and anything
    else is a function. *)

exception Elab_error of string * Ast.pos option

type t = {
  defs : Csp.Defs.t;
  assertions : (Ast.assertion * Ast.pos) list;
  positions : (string * Ast.pos) list;
      (** Source position of each top-level declared name (channels,
          datatypes, nametypes, definitions), for diagnostics. *)
}

val load : Ast.script -> t
(** @raise Elab_error on unknown identifiers, undeclared channels, arity
    mismatches, or an expression in process position (and vice versa). *)

val load_string : ?obs:Obs.t -> string -> t
(** Parse then {!load}; [obs] records [cspm.parse] and [cspm.elaborate]
    spans around the two stages.
    @raise Parser.Parse_error or {!Lexer.Lex_error} on syntax errors. *)

val proc_of_term : t -> Ast.term -> Csp.Proc.t
(** Elaborate a closed process term against a loaded script (used by the
    CLI and tests). *)

val expr_of_term : t -> Ast.term -> Csp.Expr.t

val eventset_of_term : t -> Ast.term -> Csp.Eventset.t
