(** Hand-written lexer for the CSPm subset.

    Handles CSPm's unusually dense symbol set ("[]", "[|", "[[", "[T=",
    "|~|", "|||", "{|", ...) with longest-match rules, [--] line comments
    and nestable [{- -}] block comments. *)

type token =
  | IDENT of string
  | NUM of int
  | KW_channel
  | KW_datatype
  | KW_nametype
  | KW_assert
  | KW_if
  | KW_then
  | KW_else
  | KW_not
  | KW_and
  | KW_or
  | KW_true
  | KW_false
  | KW_stop
  | KW_skip
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | LCHANSET  (** "{|" *)
  | RCHANSET  (** "|}" *)
  | LINTERFACE  (** "[|" *)
  | RINTERFACE  (** "|]" *)
  | EXTCHOICE  (** "[]" *)
  | INTCHOICE  (** "|~|" *)
  | INTERLEAVE  (** "|||" *)
  | PARBAR  (** "||" *)
  | LRENAME  (** "[[" *)
  | RRENAME  (** "]]" *)
  | REFINES_T  (** "[T=" *)
  | REFINES_F  (** "[F=" *)
  | REFINES_FD  (** "[FD=" *)
  | INTERRUPT_OP  (** "/\\" *)
  | SLIDE  (** "[>" *)
  | COLON_LBRACKET  (** ":[" *)
  | ARROW  (** "->" *)
  | LARROW  (** "<-" *)
  | SEMI
  | AMP
  | AT
  | COMMA
  | COLON
  | EQUALS
  | DOT
  | DOTDOT
  | QUESTION
  | BANG
  | BACKSLASH
  | PIPE
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | NEQ | LT | LE | GT | GE
  | EOF

exception Lex_error of string * Ast.pos

val tokens : string -> (token * Ast.pos) list
(** Tokenize a whole script; the last element is always [EOF].
    @raise Lex_error on an unexpected character or unterminated comment. *)

val token_to_string : token -> string
