exception Parse_error of string * Ast.pos

type state = {
  toks : (Lexer.token * Ast.pos) array;
  mutable cursor : int;
}

let current st = fst st.toks.(st.cursor)
let current_pos st = snd st.toks.(st.cursor)

let fail st msg =
  raise
    (Parse_error
       ( Printf.sprintf "%s (found %s)" msg
           (Lexer.token_to_string (current st)),
         current_pos st ))

let advance st = if current st <> Lexer.EOF then st.cursor <- st.cursor + 1

let eat st tok =
  if current st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Lexer.token_to_string tok))

let eat_ident st =
  match current st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Type expressions                                                    *)
(* ------------------------------------------------------------------ *)

let rec ty_atom st : Ast.ty_expr =
  match current st with
  | Lexer.IDENT "Bool" ->
    advance st;
    Ast.TE_bool
  | Lexer.IDENT name ->
    advance st;
    Ast.TE_name name
  | Lexer.LBRACE ->
    advance st;
    let lo = num st in
    eat st Lexer.DOTDOT;
    let hi = num st in
    eat st Lexer.RBRACE;
    Ast.TE_range (lo, hi)
  | Lexer.LPAREN ->
    advance st;
    let first = ty_atom st in
    let rec more acc =
      match current st with
      | Lexer.COMMA ->
        advance st;
        more (ty_atom st :: acc)
      | _ -> List.rev acc
    in
    let items = more [ first ] in
    eat st Lexer.RPAREN;
    (match items with
     | [ single ] -> single
     | _ -> Ast.TE_tuple items)
  | _ -> fail st "expected a type"

and num st =
  match current st with
  | Lexer.NUM n ->
    advance st;
    n
  | Lexer.MINUS ->
    advance st;
    (match current st with
     | Lexer.NUM n ->
       advance st;
       -n
     | _ -> fail st "expected a number")
  | _ -> fail st "expected a number"

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

(* Loosest process level: hiding. *)
let rec p_hide st =
  let left = p_par st in
  let rec loop left =
    match current st with
    | Lexer.BACKSLASH ->
      advance st;
      let set = atom st in
      loop (Ast.T_hide (left, set))
    | _ -> left
  in
  loop left

and p_par st =
  let left = p_choice st in
  let rec loop left =
    match current st with
    | Lexer.LINTERFACE ->
      advance st;
      let set = p_hide st in
      eat st Lexer.RINTERFACE;
      let right = p_choice st in
      loop (Ast.T_par (left, set, right))
    | Lexer.LBRACKET ->
      (* alphabetized parallel: [ A || B ] *)
      advance st;
      let a = p_hide st in
      eat st Lexer.PARBAR;
      let b = p_hide st in
      eat st Lexer.RBRACKET;
      let right = p_choice st in
      loop (Ast.T_apar (left, a, b, right))
    | Lexer.INTERLEAVE ->
      advance st;
      let right = p_choice st in
      loop (Ast.T_interleave (left, right))
    | _ -> left
  in
  loop left

and p_choice st =
  let left = p_interrupt st in
  let rec loop left =
    match current st with
    | Lexer.EXTCHOICE ->
      advance st;
      let right = p_interrupt st in
      loop (Ast.T_extchoice (left, right))
    | Lexer.INTCHOICE ->
      advance st;
      let right = p_interrupt st in
      loop (Ast.T_intchoice (left, right))
    | _ -> left
  in
  loop left

and p_interrupt st =
  let left = p_seq st in
  let rec loop left =
    match current st with
    | Lexer.INTERRUPT_OP ->
      advance st;
      let right = p_seq st in
      loop (Ast.T_interrupt (left, right))
    | Lexer.SLIDE ->
      advance st;
      let right = p_seq st in
      loop (Ast.T_slide (left, right))
    | _ -> left
  in
  loop left

and p_seq st =
  let left = p_guard st in
  match current st with
  | Lexer.SEMI ->
    advance st;
    let right = p_seq st in
    Ast.T_seq (left, right)
  | _ -> left

and p_guard st =
  let left = p_prefix st in
  match current st with
  | Lexer.AMP ->
    advance st;
    let right = p_guard st in
    Ast.T_guard (left, right)
  | _ -> left

(* Prefix level: try to read [chan fields -> P]; if there is no arrow,
   backtrack and read a scalar expression. *)
and p_prefix st =
  match current st with
  | Lexer.IDENT chan ->
    let saved = st.cursor in
    (match try_comm st chan with
     | Some comm when current st = Lexer.ARROW ->
       advance st;
       let cont = p_prefix st in
       Ast.T_prefix (comm, cont)
     | _ ->
       st.cursor <- saved;
       expr_or st)
  | _ -> expr_or st

(* Attempt to parse communication fields after a channel name. Returns
   [None] (without restoring the cursor) if the shape cannot be a
   communication; the caller restores. *)
and try_comm st chan =
  advance st;
  (* consume the IDENT *)
  let rec fields acc =
    match current st with
    | Lexer.BANG ->
      advance st;
      let e = comm_atom st in
      fields (Ast.F_out e :: acc)
    | Lexer.DOT ->
      advance st;
      let e = comm_atom st in
      fields (Ast.F_dot e :: acc)
    | Lexer.QUESTION ->
      advance st;
      let x =
        match current st with
        | Lexer.IDENT x ->
          advance st;
          x
        | _ -> raise Exit
      in
      let restr =
        match current st with
        | Lexer.COLON ->
          advance st;
          Some (comm_atom st)
        | _ -> None
      in
      fields (Ast.F_in (x, restr) :: acc)
    | _ -> List.rev acc
  in
  match fields [] with
  | fields -> Some { Ast.chan; fields }
  | exception Exit -> None

(* Atoms allowed as a communication field: tight expressions without
   operators, so that [c!x+1] must be written [c!(x+1)]. *)
and comm_atom st =
  match current st with
  | Lexer.NUM n ->
    advance st;
    Ast.T_num n
  | Lexer.KW_true ->
    advance st;
    Ast.T_bool true
  | Lexer.KW_false ->
    advance st;
    Ast.T_bool false
  | Lexer.IDENT name ->
    advance st;
    (match current st with
     | Lexer.LPAREN ->
       advance st;
       let args = term_list st in
       eat st Lexer.RPAREN;
       Ast.T_app (name, args)
     | _ -> Ast.T_id name)
  | Lexer.LPAREN ->
    advance st;
    let items = term_list st in
    eat st Lexer.RPAREN;
    (match items with
     | [ single ] -> single
     | _ -> Ast.T_tuple items)
  | Lexer.LBRACE -> braces st
  | _ -> fail st "expected a communication field"

(* ------------------------------------------------------------------ *)
(* Scalar expressions                                                  *)
(* ------------------------------------------------------------------ *)

and expr_or st =
  let left = expr_and st in
  let rec loop left =
    match current st with
    | Lexer.KW_or ->
      advance st;
      let right = expr_and st in
      loop (Ast.T_bin (Ast.B_or, left, right))
    | _ -> left
  in
  loop left

and expr_and st =
  let left = expr_cmp st in
  let rec loop left =
    match current st with
    | Lexer.KW_and ->
      advance st;
      let right = expr_cmp st in
      loop (Ast.T_bin (Ast.B_and, left, right))
    | _ -> left
  in
  loop left

and expr_cmp st =
  let left = expr_add st in
  let op =
    match current st with
    | Lexer.EQEQ -> Some Ast.B_eq
    | Lexer.NEQ -> Some Ast.B_neq
    | Lexer.LT -> Some Ast.B_lt
    | Lexer.LE -> Some Ast.B_le
    | Lexer.GT -> Some Ast.B_gt
    | Lexer.GE -> Some Ast.B_ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    let right = expr_add st in
    Ast.T_bin (op, left, right)
  | None -> left

and expr_add st =
  let left = expr_mul st in
  let rec loop left =
    match current st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.T_bin (Ast.B_add, left, expr_mul st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.T_bin (Ast.B_sub, left, expr_mul st))
    | _ -> left
  in
  loop left

and expr_mul st =
  let left = expr_unary st in
  let rec loop left =
    match current st with
    | Lexer.STAR ->
      advance st;
      loop (Ast.T_bin (Ast.B_mul, left, expr_unary st))
    | Lexer.SLASH ->
      advance st;
      loop (Ast.T_bin (Ast.B_div, left, expr_unary st))
    | Lexer.PERCENT ->
      advance st;
      loop (Ast.T_bin (Ast.B_mod, left, expr_unary st))
    | _ -> left
  in
  loop left

and expr_unary st =
  match current st with
  | Lexer.MINUS ->
    advance st;
    Ast.T_neg (expr_unary st)
  | Lexer.KW_not ->
    advance st;
    Ast.T_not (expr_unary st)
  | _ -> postfix st

(* Dotted chains [a.b.c] and postfix renaming [P[[a <- b]]]. *)
and postfix st =
  let left = atom st in
  let rec loop left =
    match current st with
    | Lexer.DOT ->
      advance st;
      let right = atom st in
      loop (Ast.T_dot (left, right))
    | Lexer.LRENAME ->
      advance st;
      let rec pairs acc =
        let a = eat_ident st in
        eat st Lexer.LARROW;
        let b = eat_ident st in
        match current st with
        | Lexer.COMMA ->
          advance st;
          pairs ((a, b) :: acc)
        | _ -> List.rev ((a, b) :: acc)
      in
      let mapping = pairs [] in
      eat st Lexer.RRENAME;
      loop (Ast.T_rename (left, mapping))
    | _ -> left
  in
  loop left

and atom st =
  match current st with
  | Lexer.NUM n ->
    advance st;
    Ast.T_num n
  | Lexer.KW_true ->
    advance st;
    Ast.T_bool true
  | Lexer.KW_false ->
    advance st;
    Ast.T_bool false
  | Lexer.KW_stop ->
    advance st;
    Ast.T_stop
  | Lexer.KW_skip ->
    advance st;
    Ast.T_skip
  | Lexer.KW_if ->
    advance st;
    let cond = p_hide st in
    eat st Lexer.KW_then;
    let a = p_hide st in
    eat st Lexer.KW_else;
    let b = p_hide st in
    Ast.T_if (cond, a, b)
  | Lexer.EXTCHOICE -> replicated st Ast.R_ext
  | Lexer.INTCHOICE -> replicated st Ast.R_int
  | Lexer.INTERLEAVE -> replicated st Ast.R_inter
  | Lexer.IDENT name ->
    advance st;
    (match current st with
     | Lexer.LPAREN ->
       advance st;
       let args = term_list st in
       eat st Lexer.RPAREN;
       Ast.T_app (name, args)
     | _ -> Ast.T_id name)
  | Lexer.LPAREN ->
    advance st;
    let items = term_list st in
    eat st Lexer.RPAREN;
    (match items with
     | [ single ] -> single
     | _ -> Ast.T_tuple items)
  | Lexer.LBRACE -> braces st
  | Lexer.LCHANSET ->
    advance st;
    let rec names acc =
      (* one production: an identifier optionally followed by .atom args *)
      let c = eat_ident st in
      let rec dots acc_t =
        match current st with
        | Lexer.DOT ->
          advance st;
          let arg = comm_atom st in
          dots (Ast.T_dot (acc_t, arg))
        | _ -> acc_t
      in
      let item = dots (Ast.T_id c) in
      match current st with
      | Lexer.COMMA ->
        advance st;
        names (item :: acc)
      | _ -> List.rev (item :: acc)
    in
    let cs = names [] in
    eat st Lexer.RCHANSET;
    Ast.T_chanset cs
  | _ -> fail st "expected an expression"

and braces st =
  (* { } , {e1, ..}, or {lo..hi} *)
  eat st Lexer.LBRACE;
  match current st with
  | Lexer.RBRACE ->
    advance st;
    Ast.T_set []
  | _ ->
    let first = p_hide st in
    (match current st with
     | Lexer.DOTDOT ->
       advance st;
       let hi = p_hide st in
       eat st Lexer.RBRACE;
       Ast.T_range (first, hi)
     | Lexer.COMMA ->
       advance st;
       let rec more acc =
         let e = p_hide st in
         match current st with
         | Lexer.COMMA ->
           advance st;
           more (e :: acc)
         | _ -> List.rev (e :: acc)
       in
       let rest = more [] in
       eat st Lexer.RBRACE;
       Ast.T_set (first :: rest)
     | _ ->
       eat st Lexer.RBRACE;
       Ast.T_set [ first ])

and replicated st kind =
  advance st;
  let x = eat_ident st in
  eat st Lexer.COLON;
  let set = p_choice st in
  eat st Lexer.AT;
  let body = p_hide st in
  Ast.T_repl (kind, x, set, body)

and term_list st =
  match current st with
  | Lexer.RPAREN -> []
  | _ ->
    let rec more acc =
      let e = p_hide st in
      match current st with
      | Lexer.COMMA ->
        advance st;
        more (e :: acc)
      | _ -> List.rev (e :: acc)
    in
    more []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let channel_decl st =
  eat st Lexer.KW_channel;
  let rec names acc =
    let c = eat_ident st in
    match current st with
    | Lexer.COMMA ->
      advance st;
      names (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  let cs = names [] in
  let tys =
    match current st with
    | Lexer.COLON ->
      advance st;
      let rec more acc =
        let ty = ty_atom st in
        match current st with
        | Lexer.DOT ->
          advance st;
          more (ty :: acc)
        | _ -> List.rev (ty :: acc)
      in
      more []
    | _ -> []
  in
  Ast.D_channel (cs, tys)

let datatype_decl st =
  eat st Lexer.KW_datatype;
  let name = eat_ident st in
  eat st Lexer.EQUALS;
  let ctor () =
    let c = eat_ident st in
    let rec args acc =
      match current st with
      | Lexer.DOT ->
        advance st;
        args (ty_atom st :: acc)
      | _ -> List.rev acc
    in
    c, args []
  in
  let rec ctors acc =
    let c = ctor () in
    match current st with
    | Lexer.PIPE ->
      advance st;
      ctors (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  Ast.D_datatype (name, ctors [])

let nametype_decl st =
  eat st Lexer.KW_nametype;
  let name = eat_ident st in
  eat st Lexer.EQUALS;
  let ty = ty_atom st in
  Ast.D_nametype (name, ty)

let assert_decl st =
  eat st Lexer.KW_assert;
  let left = p_hide st in
  match current st with
  | Lexer.REFINES_T ->
    advance st;
    let right = p_hide st in
    Ast.D_assert (Ast.A_refines (left, Ast.M_traces, right))
  | Lexer.REFINES_F ->
    advance st;
    let right = p_hide st in
    Ast.D_assert (Ast.A_refines (left, Ast.M_failures, right))
  | Lexer.REFINES_FD ->
    advance st;
    let right = p_hide st in
    Ast.D_assert (Ast.A_refines (left, Ast.M_failures_divergences, right))
  | Lexer.COLON_LBRACKET ->
    advance st;
    let kind = eat_ident st in
    let () =
      match current st with
      | Lexer.IDENT "free" -> advance st
      | _ when kind = "deterministic" -> ()
      | _ -> fail st "expected 'free'"
    in
    (* optional model annotation like [F] or [FD]; note the trailing "]]"
       lexes as RRENAME *)
    (match current st with
     | Lexer.LBRACKET ->
       advance st;
       let _ = eat_ident st in
       (match current st with
        | Lexer.RRENAME -> advance st
        | _ ->
          eat st Lexer.RBRACKET;
          eat st Lexer.RBRACKET)
     | _ -> eat st Lexer.RBRACKET);
    (match kind with
     | "deadlock" -> Ast.D_assert (Ast.A_deadlock_free left)
     | "divergence" | "livelock" -> Ast.D_assert (Ast.A_divergence_free left)
     | "deterministic" -> Ast.D_assert (Ast.A_deterministic left)
     | _ ->
       fail st
         "expected 'deadlock', 'divergence', 'livelock' or 'deterministic'")
  | _ -> fail st "expected a refinement or property assertion"

let definition st =
  let name = eat_ident st in
  let params =
    match current st with
    | Lexer.LPAREN ->
      advance st;
      let rec more acc =
        let x = eat_ident st in
        match current st with
        | Lexer.COMMA ->
          advance st;
          more (x :: acc)
        | _ -> List.rev (x :: acc)
      in
      let ps = more [] in
      eat st Lexer.RPAREN;
      ps
    | _ -> []
  in
  eat st Lexer.EQUALS;
  let body = p_hide st in
  Ast.D_def (name, params, body)

let decl st =
  let pos = current_pos st in
  let d =
    match current st with
    | Lexer.KW_channel -> channel_decl st
    | Lexer.KW_datatype -> datatype_decl st
    | Lexer.KW_nametype -> nametype_decl st
    | Lexer.KW_assert -> assert_decl st
    | Lexer.IDENT _ -> definition st
    | _ -> fail st "expected a declaration"
  in
  d, pos

let script src =
  let st = { toks = Array.of_list (Lexer.tokens src); cursor = 0 } in
  let rec loop acc =
    match current st with
    | Lexer.EOF -> List.rev acc
    | _ -> loop (decl st :: acc)
  in
  { Ast.decls = loop [] }

let term src =
  let st = { toks = Array.of_list (Lexer.tokens src); cursor = 0 } in
  let t = p_hide st in
  (match current st with
   | Lexer.EOF -> ()
   | _ -> fail st "trailing input after term");
  t
