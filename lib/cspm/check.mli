(** Running the [assert] declarations of a loaded script — the
    FDR-equivalent step of the paper's workflow (Fig. 1, "Refinement
    checking"). *)

type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

val run_assertion :
  ?config:Csp.Check_config.t ->
  Elaborate.t ->
  Ast.assertion ->
  Csp.Refine.result
(** Elaborate the assertion's terms against the loaded script and run the
    corresponding check ([T=] trace refinement, [F=] stable-failures
    refinement, deadlock or divergence freedom). Budgets, worker pool,
    and observability come from [config] (default
    {!Csp.Check_config.default}); on a budget expiry the result is
    {!Csp.Refine.Inconclusive} rather than an exception. *)

val slice : remaining_wall:float -> remaining:int -> float
(** The wall-clock share the next assertion receives when
    [remaining_wall] seconds are left for [remaining] assertions:
    [remaining_wall / remaining], clamped to be non-negative. Exposed so
    the rolling-budget arithmetic is testable on its own. *)

type stop = {
  next_index : int;  (** the assertion that was interrupted *)
  search : Csp.Search.checkpoint option;
      (** the engine checkpoint of the interrupted product search; [None]
          when the interrupt landed outside a checkpointable search *)
}

val run_seq :
  ?start:int ->
  ?resume_first:Csp.Search.checkpoint ->
  config:Csp.Check_config.t ->
  Elaborate.t ->
  outcome list * stop option
(** The interruptible sequential runner behind [cspm_check
    --checkpoint-out]/[--resume]. Runs assertions [start..] in script
    order (default [start = 0]), resuming the first one from
    [resume_first] when given. Stops early when an assertion comes back
    {!Csp.Refine.Inconclusive} with [exhausted = Interrupt] (the
    cancellation token tripped): the interrupted outcome is still the
    last element of the returned list — so a valid partial report can be
    written — but the {!stop} record points at it as the assertion to
    re-run. [stop = None] means the sequence ran to the end.

    A [config.deadline] is a rolling budget over the assertions actually
    run, recomputed per assertion exactly like {!run}'s sequential
    deadline path. *)

val run : ?config:Csp.Check_config.t -> Elaborate.t -> outcome list
(** Run every [assert], reporting outcomes in script order. A
    [config.deadline] covers the whole run; each assertion's slice is
    recomputed as remaining-wall / remaining-assertions, so budget left
    unused by fast assertions rolls forward to later (possibly hard) ones
    instead of being discarded.

    [config.workers] enables multicore checking: under a deadline (whose
    accounting is inherently sequential) each assertion runs the parallel
    engine with the full pool; without one, up to that many independent
    assertions run concurrently on their own domains, each given an equal
    share of the pool for its own product search. Verdicts and
    counterexamples are identical to a sequential run either way.

    [config.obs] records a [check.assertion] span per assertion (on the
    sequential paths) on top of the engine's own spans and metrics. *)

val all_pass : outcome list -> bool
(** Every outcome is {!Csp.Refine.Holds} — inconclusive is not a pass. *)

val any_fails : outcome list -> bool
(** At least one outcome is a definite {!Csp.Refine.Fails}. *)

val any_inconclusive : outcome list -> bool

val json_of_outcomes : ?cache:Csp.Cache.stats -> outcome list -> Obs.Json.t
(** The machine-readable outcome report behind [cspm_check --format
    json]. Stable schema ["cspm-check/1"]:

    {v
    { "schema": "cspm-check/1",
      "assertions": [
        { "index": 0, "assertion": "<pretty CSPm>",
          "line": 3, "col": 1,            // present when the source
                                          // position is known
          "verdict": "pass" | "fail" | "inconclusive",
          "stats": { "impl_states", "spec_nodes", "pairs", "wall_s",
                     "states_per_sec", "peak_frontier", "workers",
                     "par_speedup",
                     "reductions": [      // one entry per reduction pass
                       { "pass", "states_before", "states_after" }, ... ]
                   },                     // pass and inconclusive
          "counterexample": { "trace": ["ev.1", ...],
                              "violation": "<description>" },  // fail
          "resume_hint": { "frontier", "exhausted": "deadline" |
                           "states" | "pairs",
                           "deepest": [...] } },  // inconclusive
        ... ],
      "summary": { "total", "passed", "failed", "inconclusive" } }
    v}

    New fields may be added over time; existing fields keep their names
    and meanings (earlier revisions added ["resume_hint"]["checkpoint"] —
    the engine checkpoint, when one exists — and widened ["exhausted"] to
    the full {!Csp.Search.budget_kind_to_string} vocabulary; this one
    adds ["stats"]["reductions"], the per-pass state counts of the staged
    reduction pipeline, [[]] on the raw path, and this one adds the
    optional top-level ["cache"] object — [{"hits", "misses",
    "evictions", "resident_states", "resident_entries"}], present when
    the run used an LTS cache). Timing fields ([wall_s],
    [states_per_sec], [par_speedup]) vary run to run; everything else is
    deterministic. *)

val json_of_outcome : int -> outcome -> Obs.Json.t
(** One entry of the report's ["assertions"] array, at index [i]. *)

val report_of_json_outcomes :
  ?cache:Csp.Cache.stats -> Obs.Json.t list -> Obs.Json.t
(** Wrap already-rendered outcome objects into a full ["cspm-check/1"]
    report, recounting the summary from their ["verdict"] fields; [cache]
    adds the top-level ["cache"] stats object.
    [json_of_outcomes os = report_of_json_outcomes (List.mapi
    json_of_outcome os)]; a resumed run splices the outcome objects
    stored in its checkpoint in front of the ones it computed itself. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_outcomes : Format.formatter -> outcome list -> unit

(** {2 The ["cspm-checkpoint/1"] document}

    What [cspm_check --checkpoint-out] writes and [--resume] reads: the
    script digest (resuming against a different script is refused
    up-front), the rendered outcomes of the assertions that completed,
    the index of the assertion to re-run, and — when the interrupt landed
    inside a product search — the engine checkpoint to fast-forward it
    from. *)

type resume_state = {
  script_digest : string;
      (** hex digest of the script source the checkpoint belongs to *)
  completed : Obs.Json.t list;
      (** rendered {!json_of_outcome} objects for assertions
          [0 .. next_index - 1] *)
  next_index : int;  (** the assertion to re-run *)
  search : Csp.Search.checkpoint option;
}

val checkpoint_schema : string
(** ["cspm-checkpoint/1"]. *)

val json_of_resume_state : resume_state -> Obs.Json.t

val resume_state_of_json : Obs.Json.t -> (resume_state, string) result
(** Validates the schema tag, that [completed] has exactly [next_index]
    entries, and the embedded engine checkpoint (when non-null). *)
