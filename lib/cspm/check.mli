(** Running the [assert] declarations of a loaded script — the
    FDR-equivalent step of the paper's workflow (Fig. 1, "Refinement
    checking"). *)

type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

val run_assertion :
  ?max_states:int ->
  ?deadline:float ->
  ?workers:int ->
  Elaborate.t ->
  Ast.assertion ->
  Csp.Refine.result
(** Elaborate the assertion's terms against the loaded script and run the
    corresponding check ([T=] trace refinement, [F=] stable-failures
    refinement, deadlock or divergence freedom). [deadline] is a
    wall-clock budget in seconds; on expiry the result is
    {!Csp.Refine.Inconclusive} rather than an exception. [workers]
    (default 1) sizes the refinement engine's domain pool. *)

val slice : remaining_wall:float -> remaining:int -> float
(** The wall-clock share the next assertion receives when
    [remaining_wall] seconds are left for [remaining] assertions:
    [remaining_wall / remaining], clamped to be non-negative. Exposed so
    the rolling-budget arithmetic is testable on its own. *)

val run :
  ?max_states:int -> ?deadline:float -> ?workers:int -> Elaborate.t ->
  outcome list
(** Run every [assert], reporting outcomes in script order. A [deadline]
    covers the whole run; each assertion's slice is recomputed as
    remaining-wall / remaining-assertions, so budget left unused by fast
    assertions rolls forward to later (possibly hard) ones instead of
    being discarded.

    [workers] (default 1) enables multicore checking: under a deadline
    (whose accounting is inherently sequential) each assertion runs the
    parallel engine with the full pool; without one, up to [workers]
    independent assertions run concurrently on their own domains, each
    given an equal share of the pool for its own product search. Verdicts
    and counterexamples are identical to a sequential run either way. *)

val all_pass : outcome list -> bool
(** Every outcome is {!Csp.Refine.Holds} — inconclusive is not a pass. *)

val any_fails : outcome list -> bool
(** At least one outcome is a definite {!Csp.Refine.Fails}. *)

val any_inconclusive : outcome list -> bool

val pp_outcome : Format.formatter -> outcome -> unit
val pp_outcomes : Format.formatter -> outcome list -> unit
