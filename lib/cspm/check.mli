(** Running the [assert] declarations of a loaded script — the
    FDR-equivalent step of the paper's workflow (Fig. 1, "Refinement
    checking"). *)

type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

val run_assertion :
  ?config:Csp.Check_config.t ->
  Elaborate.t ->
  Ast.assertion ->
  Csp.Refine.result
(** Elaborate the assertion's terms against the loaded script and run the
    corresponding check ([T=] trace refinement, [F=] stable-failures
    refinement, deadlock or divergence freedom). Budgets, worker pool,
    and observability come from [config] (default
    {!Csp.Check_config.default}); on a budget expiry the result is
    {!Csp.Refine.Inconclusive} rather than an exception. *)

val slice : remaining_wall:float -> remaining:int -> float
(** The wall-clock share the next assertion receives when
    [remaining_wall] seconds are left for [remaining] assertions:
    [remaining_wall / remaining], clamped to be non-negative. Exposed so
    the rolling-budget arithmetic is testable on its own. *)

val run : ?config:Csp.Check_config.t -> Elaborate.t -> outcome list
(** Run every [assert], reporting outcomes in script order. A
    [config.deadline] covers the whole run; each assertion's slice is
    recomputed as remaining-wall / remaining-assertions, so budget left
    unused by fast assertions rolls forward to later (possibly hard) ones
    instead of being discarded.

    [config.workers] enables multicore checking: under a deadline (whose
    accounting is inherently sequential) each assertion runs the parallel
    engine with the full pool; without one, up to that many independent
    assertions run concurrently on their own domains, each given an equal
    share of the pool for its own product search. Verdicts and
    counterexamples are identical to a sequential run either way.

    [config.obs] records a [check.assertion] span per assertion (on the
    sequential paths) on top of the engine's own spans and metrics. *)

val all_pass : outcome list -> bool
(** Every outcome is {!Csp.Refine.Holds} — inconclusive is not a pass. *)

val any_fails : outcome list -> bool
(** At least one outcome is a definite {!Csp.Refine.Fails}. *)

val any_inconclusive : outcome list -> bool

val json_of_outcomes : outcome list -> Obs.Json.t
(** The machine-readable outcome report behind [cspm_check --format
    json]. Stable schema ["cspm-check/1"]:

    {v
    { "schema": "cspm-check/1",
      "assertions": [
        { "index": 0, "assertion": "<pretty CSPm>",
          "line": 3, "col": 1,            // present when the source
                                          // position is known
          "verdict": "pass" | "fail" | "inconclusive",
          "stats": { "impl_states", "spec_nodes", "pairs", "wall_s",
                     "states_per_sec", "peak_frontier", "workers",
                     "par_speedup" },     // pass and inconclusive
          "counterexample": { "trace": ["ev.1", ...],
                              "violation": "<description>" },  // fail
          "resume_hint": { "frontier", "exhausted": "deadline" |
                           "states" | "pairs",
                           "deepest": [...] } },  // inconclusive
        ... ],
      "summary": { "total", "passed", "failed", "inconclusive" } }
    v}

    New fields may be added over time; existing fields keep their names
    and meanings. Timing fields ([wall_s], [states_per_sec],
    [par_speedup]) vary run to run; everything else is deterministic. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_outcomes : Format.formatter -> outcome list -> unit
