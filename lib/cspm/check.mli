(** Running the [assert] declarations of a loaded script — the
    FDR-equivalent step of the paper's workflow (Fig. 1, "Refinement
    checking"). *)

type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

val run_assertion :
  ?max_states:int -> Elaborate.t -> Ast.assertion -> Csp.Refine.result
(** Elaborate the assertion's terms against the loaded script and run the
    corresponding check ([T=] trace refinement, [F=] stable-failures
    refinement, deadlock or divergence freedom). *)

val run : ?max_states:int -> Elaborate.t -> outcome list
(** Run every [assert] in script order. *)

val all_pass : outcome list -> bool

val pp_outcome : Format.formatter -> outcome -> unit
val pp_outcomes : Format.formatter -> outcome list -> unit
