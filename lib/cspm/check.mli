(** Running the [assert] declarations of a loaded script — the
    FDR-equivalent step of the paper's workflow (Fig. 1, "Refinement
    checking"). *)

type outcome = {
  assertion : Ast.assertion;
  pos : Ast.pos option;
  result : Csp.Refine.result;
}

val run_assertion :
  ?max_states:int ->
  ?deadline:float ->
  Elaborate.t ->
  Ast.assertion ->
  Csp.Refine.result
(** Elaborate the assertion's terms against the loaded script and run the
    corresponding check ([T=] trace refinement, [F=] stable-failures
    refinement, deadlock or divergence freedom). [deadline] is a
    wall-clock budget in seconds; on expiry the result is
    {!Csp.Refine.Inconclusive} rather than an exception. *)

val run : ?max_states:int -> ?deadline:float -> Elaborate.t -> outcome list
(** Run every [assert] in script order. A [deadline] covers the whole
    run: it is divided evenly between the assertions so an intractable
    early assertion cannot consume the entire budget. *)

val all_pass : outcome list -> bool
(** Every outcome is {!Csp.Refine.Holds} — inconclusive is not a pass. *)

val any_fails : outcome list -> bool
(** At least one outcome is a definite {!Csp.Refine.Fails}. *)

val any_inconclusive : outcome list -> bool

val pp_outcome : Format.formatter -> outcome -> unit
val pp_outcomes : Format.formatter -> outcome list -> unit
