(* The frame -> spec-event mapping of the conformance checker, factored
   into a precompiled table so the trace-containment engine can map
   millions of logged entries without re-deriving signal decoders per
   frame (and without needing a full [Pipeline.system] in hand — the
   corpus checker has only a database and a spec script). *)

type decoder = int array -> Csp.Value.t

type t = {
  by_id : (int, string * decoder list) Hashtbl.t;
  channels : string list;
}

let clamp_value config (s : Candb.Dbc_ast.signal) v =
  let lo, hi, _ = Candb.To_cspm.clamped_range config s in
  let size = hi - lo + 1 in
  if v >= lo && v <= hi then v else lo + (((v - lo) mod size + size) mod size)

let make ?(domain = Candb.To_cspm.default_config) (db : Candb.Dbc_ast.t) =
  let by_id = Hashtbl.create 16 in
  let channels =
    List.map
      (fun (m : Candb.Dbc_ast.message) ->
        let chan =
          domain.Candb.To_cspm.channel_prefix ^ m.Candb.Dbc_ast.msg_name
        in
        let decoders =
          List.map
            (fun (s : Candb.Dbc_ast.signal) ->
              let capl_sig = Candb.To_capl.signal s in
              fun data ->
                let raw = Capl.Msgdb.decode_signal capl_sig data in
                Csp.Value.Int (clamp_value domain s raw))
            m.Candb.Dbc_ast.signals
        in
        Hashtbl.replace by_id m.Candb.Dbc_ast.msg_id (chan, decoders);
        chan)
      db.Candb.Dbc_ast.messages
  in
  { by_id; channels = List.sort_uniq String.compare channels }

let channels t = t.channels

let event_of_frame t (frame : Canbus.Frame.t) =
  match Hashtbl.find_opt t.by_id frame.Canbus.Frame.id with
  | None -> None
  | Some (chan, decoders) ->
    let data = Array.make 8 0 in
    for i = 0 to frame.Canbus.Frame.dlc - 1 do
      data.(i) <- Canbus.Frame.data_byte frame i
    done;
    Some (Csp.Event.event chan (List.map (fun d -> d data) decoders))

(* Only transmitted frames are observations: an [Rx] entry duplicates
   the [Tx] that delivered it, and a [Fault] entry records interference,
   not a bus-level event the specification's alphabet mentions. *)
let label_of_entry t (e : Canbus.Trace_log.entry) =
  match e.Canbus.Trace_log.direction with
  | Canbus.Trace_log.Tx ->
    Option.map
      (fun ev -> Csp.Event.Vis ev)
      (event_of_frame t e.Canbus.Trace_log.frame)
  | Canbus.Trace_log.Rx _ | Canbus.Trace_log.Fault _ -> None
