module A = Capl.Ast
module E = Csp.Expr
module P = Csp.Proc

type config = {
  domain : Candb.To_cspm.config;
  global_max : int;
  track_globals : string list option;
  max_unroll : int;
  lenient : bool;
  bus_medium : bool;
  timed : bool;
  tock_ms : int;
  max_ticks : int;
}

let default_config =
  {
    domain = { Candb.To_cspm.default_config with use_value_tables = false };
    global_max = 7;
    track_globals = None;
    max_unroll = 16;
    lenient = true;
    bus_medium = false;
    timed = false;
    tock_ms = 10;
    max_ticks = 8;
  }

type warning = {
  where : string;
  what : string;
}

let pp_warning ppf w = Format.fprintf ppf "[%s] %s" w.where w.what

exception Unsupported of warning

type node_model = {
  process_name : string;
  entry_name : string;
  alphabet : Csp.Eventset.t;
  tracked : string list;
  timers : string list;
  tx_channels : (string * string) list;
  warnings : warning list;
}

(* ------------------------------------------------------------------ *)
(* Translation context                                                 *)
(* ------------------------------------------------------------------ *)

type ctx = {
  config : config;
  defs : Csp.Defs.t;
  db : Candb.Dbc_ast.t;
  node : string;
  prog : A.program;
  tracked : string list;
  timer_names : string list;
  mutable warnings : warning list;
  mutable where : string;
  used_chans : (string, unit) Hashtbl.t;
  tx_chans : (string * string, unit) Hashtbl.t;  (* (tx chan, bus chan) *)
}

let warn ctx fmt =
  Format.kasprintf
    (fun what ->
      let w = { where = ctx.where; what } in
      if ctx.config.lenient then ctx.warnings <- w :: ctx.warnings
      else raise (Unsupported w))
    fmt

let chan_name ctx (m : Candb.Dbc_ast.message) =
  ctx.config.domain.Candb.To_cspm.channel_prefix ^ m.Candb.Dbc_ast.msg_name

let use_chan ctx name = Hashtbl.replace ctx.used_chans name ()

let timer_chan ctx t = Printf.sprintf "timer_%s_%s" ctx.node t
let key_chan ctx c = Printf.sprintf "key_%s_%c" ctx.node c
let armed_param t = "armed_" ^ t
let input_var s = "x_" ^ s.Candb.Dbc_ast.sig_name

(* ------------------------------------------------------------------ *)
(* Symbolic state                                                      *)
(* ------------------------------------------------------------------ *)

type sym = {
  globals : (string * E.t) list;  (* tracked global -> current expr *)
  timer_flags : (string * E.t) list;  (* timer -> armed (bool expr) *)
  locals : (string * E.t) list;  (* innermost binding first *)
  msg_fields : (string * (string * E.t) list) list;
      (* message var -> signal assignments *)
  msg_types : (string * Candb.Dbc_ast.message) list;
  this_ctx : (Candb.Dbc_ast.message * (string * E.t) list) option;
}

let update_assoc key v assoc = (key, v) :: List.remove_assoc key assoc

(* Constant-fold an expression when it is closed; keeps loop counters and
   literal arithmetic as literals so loop unrolling can decide
   conditions. *)
let fold_expr ctx e =
  if E.free_vars e = [] then
    match E.eval (Csp.Defs.fenv ctx.defs) E.empty_env e with
    | v -> E.Lit v
    | exception E.Eval_error _ -> e
  else e

let try_const ctx e =
  match fold_expr ctx e with
  | E.Lit v -> Some v
  | _ -> None

let wrap_global ctx e =
  fold_expr ctx (E.Bin (E.Mod, e, E.int (ctx.config.global_max + 1)))

let wrap_signal ctx (s : Candb.Dbc_ast.signal) e =
  let lo, hi, _ = Candb.To_cspm.clamped_range ctx.config.domain s in
  let size = hi - lo + 1 in
  let wrapped =
    if lo = 0 then E.Bin (E.Mod, e, E.int size)
    else E.Bin (E.Add, E.int lo, E.Bin (E.Mod, E.Bin (E.Sub, e, E.int lo), E.int size))
  in
  fold_expr ctx wrapped

(* ------------------------------------------------------------------ *)
(* Expression translation                                              *)
(* ------------------------------------------------------------------ *)

let find_function ctx name =
  List.find_opt (fun f -> String.equal f.A.fn_name name) ctx.prog.A.functions

let is_integral = function
  | A.T_int | A.T_long | A.T_int64 | A.T_byte | A.T_word | A.T_dword
  | A.T_qword | A.T_char ->
    true
  | _ -> false

let max_inline_depth = 8

let rec int_expr ?(depth = 0) ctx sym (e : A.expr) : E.t =
  let recur = int_expr ~depth ctx sym in
  match e with
  | A.E_int n -> E.int n
  | A.E_char c -> E.int (Char.code c)
  | A.E_float f ->
    warn ctx "float literal %g truncated to an integer" f;
    E.int (int_of_float f)
  | A.E_string _ ->
    warn ctx "string value abstracted to 0";
    E.int 0
  | A.E_this ->
    warn ctx "'this' used as a scalar; abstracted to 0";
    E.int 0
  | A.E_ident name ->
    (match List.assoc_opt name sym.locals with
     | Some e -> e
     | None ->
       (match List.assoc_opt name sym.globals with
        | Some e -> e
        | None ->
          if
            List.exists
              (fun v -> String.equal v.A.var_name name)
              ctx.prog.A.variables
          then warn ctx "read of untracked global %s abstracted to 0" name
          else warn ctx "read of unknown identifier %s abstracted to 0" name;
          E.int 0))
  | A.E_member (base, member) -> member_expr ctx sym base member
  | A.E_index _ ->
    warn ctx "array element read abstracted to 0";
    E.int 0
  | A.E_call ("abs", [ a ]) ->
    let e = recur a in
    E.If (E.Bin (E.Lt, e, E.int 0), E.Neg e, e)
  | A.E_call (name, args) ->
    (match find_function ctx name with
     | Some f -> inline_value_call ~depth ctx sym f args
     | None ->
       warn ctx "call to %s in expression abstracted to 0" name;
       E.int 0)
  | A.E_method _ ->
    warn ctx "byte-level message access abstracted to 0";
    E.int 0
  | A.E_unop (A.U_neg, a) -> E.Neg (recur a)
  | A.E_unop (A.U_not, a) ->
    E.If (bool_expr ~depth ctx sym a, E.int 0, E.int 1)
  | A.E_unop (A.U_bnot, _) ->
    warn ctx "bitwise complement abstracted to 0";
    E.int 0
  | A.E_binop ((A.B_land | A.B_lor | A.B_eq | A.B_neq | A.B_lt | A.B_le
               | A.B_gt | A.B_ge), _, _) ->
    E.If (bool_expr ~depth ctx sym e, E.int 1, E.int 0)
  | A.E_binop (A.B_add, a, b) -> E.Bin (E.Add, recur a, recur b)
  | A.E_binop (A.B_sub, a, b) -> E.Bin (E.Sub, recur a, recur b)
  | A.E_binop (A.B_mul, a, b) -> E.Bin (E.Mul, recur a, recur b)
  | A.E_binop (A.B_div, a, b) -> E.Bin (E.Div, recur a, recur b)
  | A.E_binop (A.B_mod, a, b) -> E.Bin (E.Mod, recur a, recur b)
  | A.E_binop (A.B_shl, a, b) -> shift_expr ctx sym ~left:true a b ~depth
  | A.E_binop (A.B_shr, a, b) -> shift_expr ctx sym ~left:false a b ~depth
  | A.E_binop ((A.B_band | A.B_bor | A.B_bxor), _, _) ->
    warn ctx "bitwise operator abstracted to 0";
    E.int 0
  | A.E_assign _ | A.E_incr _ ->
    warn ctx "assignment inside an expression has no effect in the model";
    E.int 0
  | A.E_ternary (c, a, b) ->
    E.If (bool_expr ~depth ctx sym c, recur a, recur b)

and shift_expr ctx sym ~left a b ~depth =
  match try_const ctx (int_expr ~depth ctx sym b) with
  | Some (Csp.Value.Int k) when k >= 0 && k < 30 ->
    let factor = E.int (1 lsl k) in
    let ea = int_expr ~depth ctx sym a in
    if left then E.Bin (E.Mul, ea, factor) else E.Bin (E.Div, ea, factor)
  | _ ->
    warn ctx "shift by a non-constant abstracted to 0";
    E.int 0

and bool_expr ?(depth = 0) ctx sym (e : A.expr) : E.t =
  match e with
  | A.E_binop (A.B_land, a, b) ->
    E.Bin (E.And, bool_expr ~depth ctx sym a, bool_expr ~depth ctx sym b)
  | A.E_binop (A.B_lor, a, b) ->
    E.Bin (E.Or, bool_expr ~depth ctx sym a, bool_expr ~depth ctx sym b)
  | A.E_unop (A.U_not, a) -> E.Not (bool_expr ~depth ctx sym a)
  | A.E_binop ((A.B_eq | A.B_neq | A.B_lt | A.B_le | A.B_gt | A.B_ge) as op,
               a, b) ->
    let cmp =
      match op with
      | A.B_eq -> E.Eq
      | A.B_neq -> E.Neq
      | A.B_lt -> E.Lt
      | A.B_le -> E.Le
      | A.B_gt -> E.Gt
      | A.B_ge -> E.Ge
      | _ -> invalid_arg "Extract.bool_expr: non-comparison operator"
    in
    E.Bin (cmp, int_expr ~depth ctx sym a, int_expr ~depth ctx sym b)
  | _ -> E.Bin (E.Neq, int_expr ~depth ctx sym e, E.int 0)

and member_expr ctx sym base member =
  let of_message (m : Candb.Dbc_ast.message) bindings =
    match member with
    | "id" -> E.int m.Candb.Dbc_ast.msg_id
    | "dlc" -> E.int m.Candb.Dbc_ast.dlc
    | "dir" | "can" | "time" ->
      warn ctx "message attribute .%s abstracted to 0" member;
      E.int 0
    | signal ->
      (match List.assoc_opt signal bindings with
       | Some e -> e
       | None ->
         if
           List.exists
             (fun s -> String.equal s.Candb.Dbc_ast.sig_name signal)
             m.Candb.Dbc_ast.signals
         then E.int 0  (* declared but never assigned: reset default *)
         else begin
           warn ctx "message %s has no signal %s; read abstracted to 0"
             m.Candb.Dbc_ast.msg_name signal;
           E.int 0
         end)
  in
  match base with
  | A.E_this ->
    (match sym.this_ctx with
     | Some (m, bindings) -> of_message m bindings
     | None ->
       warn ctx "'this' member read outside a message handler";
       E.int 0)
  | A.E_ident v ->
    (match List.assoc_opt v sym.msg_types with
     | Some m ->
       of_message m (Option.value ~default:[] (List.assoc_opt v sym.msg_fields))
     | None ->
       warn ctx "member access on non-message %s abstracted to 0" v;
       E.int 0)
  | _ ->
    warn ctx "unsupported member access abstracted to 0";
    E.int 0

and inline_value_call ~depth ctx sym f args =
  if depth >= max_inline_depth then begin
    warn ctx "inline depth exceeded for %s; abstracted to 0" f.A.fn_name;
    E.int 0
  end
  else begin
    let arg_exprs = List.map (int_expr ~depth ctx sym) args in
    let locals =
      List.map2 (fun (_, p) e -> p, e) f.A.fn_params arg_exprs
    in
    (* Only single-return function bodies are inlined as expressions;
       anything else would need the full statement translation to produce
       a value. *)
    match f.A.fn_body with
    | [ A.S_return (Some e) ] ->
      int_expr ~depth:(depth + 1) ctx { sym with locals } e
    | _ ->
      warn ctx
        "function %s is not a single-return expression; value abstracted \
         to 0"
        f.A.fn_name;
      E.int 0
  end

(* ------------------------------------------------------------------ *)
(* Statement translation (CPS)                                         *)
(* ------------------------------------------------------------------ *)

type ks = {
  next : sym -> P.t;
  brk : (sym -> P.t) option;
  cont : (sym -> P.t) option;
  exit : sym -> P.t;
}

let resolve_message ctx sel =
  match sel with
  | A.Msg_name n -> Candb.Dbc_ast.find_message_by_name ctx.db n
  | A.Msg_id id -> Candb.Dbc_ast.find_message ctx.db id
  | A.Msg_any -> None

let tx_chan_name ctx (m : Candb.Dbc_ast.message) =
  Printf.sprintf "tx_%s_%s" ctx.node m.Candb.Dbc_ast.msg_name

let output_prefix ctx (m : Candb.Dbc_ast.message) bindings cont =
  let chan =
    if ctx.config.bus_medium then begin
      let tx = tx_chan_name ctx m in
      if Option.is_none (Csp.Defs.channel_type ctx.defs tx) then begin
        let tys =
          List.map
            (fun s -> Csp.Ty.Named (Candb.To_cspm.signal_type_name m s))
            m.Candb.Dbc_ast.signals
        in
        Csp.Defs.declare_channel ctx.defs tx tys
      end;
      Hashtbl.replace ctx.tx_chans (tx, chan_name ctx m) ();
      tx
    end
    else chan_name ctx m
  in
  use_chan ctx chan;
  let args =
    List.map
      (fun s ->
        let e =
          Option.value ~default:(E.int 0)
            (List.assoc_opt s.Candb.Dbc_ast.sig_name bindings)
        in
        wrap_signal ctx s e)
      m.Candb.Dbc_ast.signals
  in
  P.prefix chan args cont

let rec trans_stmts ?(depth = 0) ctx sym stmts ks =
  match stmts with
  | [] -> ks.next sym
  | s :: rest ->
    let ks' = { ks with next = (fun sym' -> trans_stmts ~depth ctx sym' rest ks) } in
    trans_stmt ~depth ctx sym s ks'

and trans_stmt ?(depth = 0) ctx sym (s : A.stmt) ks =
  match s with
  | A.S_expr e -> effect_expr ~depth ctx sym e ks
  | A.S_decl decls ->
    let sym' =
      List.fold_left
        (fun sym d ->
          match d.A.var_ty with
          | A.T_message (A.Msg_name n) ->
            (match Candb.Dbc_ast.find_message_by_name ctx.db n with
             | Some m ->
               { sym with
                 msg_types = update_assoc d.A.var_name m sym.msg_types;
                 msg_fields = update_assoc d.A.var_name [] sym.msg_fields }
             | None ->
               warn ctx "local message %s has unknown type %s" d.A.var_name n;
               sym)
          | ty when is_integral ty ->
            if d.A.var_dims <> [] then begin
              warn ctx "local array %s is not tracked" d.A.var_name;
              sym
            end
            else
              let init =
                match d.A.var_init with
                | Some e -> fold_expr ctx (int_expr ~depth ctx sym e)
                | None -> E.int 0
              in
              { sym with locals = update_assoc d.A.var_name init sym.locals }
          | _ ->
            warn ctx "local %s of type %s is not tracked" d.A.var_name
              (A.ty_name d.A.var_ty);
            sym)
        sym decls
    in
    ks.next sym'
  | A.S_if (c, a, b) ->
    let cond = fold_expr ctx (bool_expr ~depth ctx sym c) in
    (match cond with
     | E.Lit (Csp.Value.Bool true) -> trans_stmt ~depth ctx sym a ks
     | E.Lit (Csp.Value.Bool false) ->
       (match b with
        | Some s -> trans_stmt ~depth ctx sym s ks
        | None -> ks.next sym)
     | _ ->
       let then_p = trans_stmt ~depth ctx sym a ks in
       let else_p =
         match b with
         | Some s -> trans_stmt ~depth ctx sym s ks
         | None -> ks.next sym
       in
       P.ite (cond, then_p, else_p))
  | A.S_while (c, body) ->
    unroll_loop ~depth ctx sym ks ~cond:(Some c) ~body ~update:None
      ~check_first:true
  | A.S_do_while (body, c) ->
    unroll_loop ~depth ctx sym ks ~cond:(Some c) ~body ~update:None
      ~check_first:false
  | A.S_for (init, cond, update, body) ->
    let after_init sym' =
      unroll_loop ~depth ctx sym' ks ~cond ~body ~update ~check_first:true
    in
    (match init with
     | None -> after_init sym
     | Some s -> trans_stmt ~depth ctx sym s { ks with next = after_init })
  | A.S_switch (e, cases) ->
    let scrutinee = fold_expr ctx (int_expr ~depth ctx sym e) in
    (* fallthrough: entering case i executes the bodies from i on, with
       break jumping to the continuation *)
    let from_index i sym' =
      let rec bodies j =
        if j >= List.length cases then []
        else (List.nth cases j).A.case_body @ bodies (j + 1)
      in
      trans_stmts ~depth ctx sym' (bodies i)
        { ks with brk = Some ks.next; cont = ks.cont }
    in
    let default_branch sym' =
      match
        List.mapi (fun i c -> i, c) cases
        |> List.find_opt (fun (_, c) -> c.A.case_label = None)
      with
      | Some (i, _) -> from_index i sym'
      | None -> ks.next sym'
    in
    let rec build i =
      if i >= List.length cases then default_branch sym
      else
        match (List.nth cases i).A.case_label with
        | None -> build (i + 1)
        | Some label ->
          let lab = fold_expr ctx (int_expr ~depth ctx sym label) in
          P.ite (E.Bin (E.Eq, scrutinee, lab), from_index i sym, build (i + 1))
    in
    build 0
  | A.S_break ->
    (match ks.brk with
     | Some k -> k sym
     | None ->
       warn ctx "break outside a translatable loop";
       ks.next sym)
  | A.S_continue ->
    (match ks.cont with
     | Some k -> k sym
     | None ->
       warn ctx "continue outside a translatable loop";
       ks.next sym)
  | A.S_return _ -> ks.exit sym
  | A.S_block body -> trans_stmts ~depth ctx sym body ks

and unroll_loop ~depth ctx sym ks ~cond ~body ~update ~check_first =
  (* Loops are unrolled statically: the condition must fold to a constant
     at every iteration (typical CAPL loops iterate over literal bounds).
     A non-static condition is reported and the loop is skipped — an
     under-approximation recorded as a warning. *)
  let static_cond sym =
    match cond with
    | None -> Some true
    | Some c ->
      (match try_const ctx (bool_expr ~depth ctx sym c) with
       | Some (Csp.Value.Bool b) -> Some b
       | Some _ | None -> None)
  in
  let apply_update sym k =
    match update with
    | None -> k sym
    | Some u -> effect_expr ~depth ctx sym u { ks with next = k; brk = None; cont = None }
  in
  let rec iter sym n =
    if n >= ctx.config.max_unroll then begin
      warn ctx "loop exceeded the unroll bound (%d); truncated"
        ctx.config.max_unroll;
      ks.next sym
    end
    else
      match static_cond sym with
      | None ->
        warn ctx "loop with a non-static condition skipped";
        ks.next sym
      | Some false -> ks.next sym
      | Some true ->
        trans_stmt ~depth ctx sym body
          {
            ks with
            next = (fun sym' -> apply_update sym' (fun s -> iter s (n + 1)));
            brk = Some ks.next;
            cont =
              Some (fun sym' -> apply_update sym' (fun s -> iter s (n + 1)));
          }
  in
  if check_first then iter sym 0
  else
    (* do-while: one unconditional iteration *)
    trans_stmt ~depth ctx sym body
      {
        ks with
        next = (fun sym' -> apply_update sym' (fun s -> iter s 1));
        brk = Some ks.next;
        cont = Some (fun sym' -> apply_update sym' (fun s -> iter s 1));
      }

and effect_expr ~depth ctx sym (e : A.expr) ks =
  match e with
  | A.E_assign (op, lhs, rhs) -> assign_effect ~depth ctx sym op lhs rhs ks
  | A.E_incr (up, _, lv) ->
    let op = if up then A.A_add else A.A_sub in
    assign_effect ~depth ctx sym op lv (A.E_int 1) ks
  | A.E_call ("output", [ arg ]) ->
    (match arg with
     | A.E_this ->
       (match sym.this_ctx with
        | Some (m, bindings) -> output_prefix ctx m bindings (ks.next sym)
        | None ->
          warn ctx "output(this) outside a message handler; skipped";
          ks.next sym)
     | A.E_ident v ->
       (match List.assoc_opt v sym.msg_types with
        | Some m ->
          let bindings =
            Option.value ~default:[] (List.assoc_opt v sym.msg_fields)
          in
          output_prefix ctx m bindings (ks.next sym)
        | None ->
          warn ctx "output(%s): not a known message variable; skipped" v;
          ks.next sym)
     | _ ->
       warn ctx "output() with a complex argument; skipped";
       ks.next sym)
  | A.E_call ("setTimer", A.E_ident t :: rest) ->
    if List.mem t ctx.timer_names then
      if ctx.config.timed then begin
        (* discrete tock countdown: duration / tock_ms ticks, clamped *)
        let ticks =
          match rest with
          | [ d ] ->
            (match try_const ctx (int_expr ~depth ctx sym d) with
             | Some (Csp.Value.Int ms) ->
               let is_s_timer =
                 List.exists
                   (fun v ->
                     String.equal v.A.var_name t && v.A.var_ty = A.T_timer)
                   ctx.prog.A.variables
               in
               let ms = if is_s_timer then ms * 1000 else ms in
               let n = max 1 (ms / ctx.config.tock_ms) in
               if n > ctx.config.max_ticks then begin
                 warn ctx
                   "timer %s duration clamps to %d tocks (max_ticks)" t
                   ctx.config.max_ticks;
                 ctx.config.max_ticks
               end
               else n
             | _ ->
               warn ctx "setTimer(%s, non-constant) armed for 1 tock" t;
               1)
          | _ ->
            warn ctx "setTimer(%s) without a duration; armed for 1 tock" t;
            1
        in
        ks.next
          { sym with timer_flags = update_assoc t (E.int ticks) sym.timer_flags }
      end
      else
        ks.next
          { sym with timer_flags = update_assoc t (E.bool true) sym.timer_flags }
    else begin
      warn ctx "setTimer on unknown timer %s; skipped" t;
      ks.next sym
    end
  | A.E_call ("cancelTimer", [ A.E_ident t ]) ->
    if List.mem t ctx.timer_names then
      let off = if ctx.config.timed then E.int 0 else E.bool false in
      ks.next { sym with timer_flags = update_assoc t off sym.timer_flags }
    else begin
      warn ctx "cancelTimer on unknown timer %s; skipped" t;
      ks.next sym
    end
  | A.E_call ("write", _) ->
    (* logging has no protocol-visible effect *)
    ks.next sym
  | A.E_call (name, args) ->
    (match find_function ctx name with
     | Some f -> inline_proc_call ~depth ctx sym f args ks
     | None ->
       warn ctx "call to unknown function %s; skipped" name;
       ks.next sym)
  | _ ->
    (* value-only expression statement: no protocol effect *)
    ks.next sym

and inline_proc_call ~depth ctx sym f args ks =
  if depth >= max_inline_depth then begin
    warn ctx "inline depth exceeded for %s; call skipped" f.A.fn_name;
    ks.next sym
  end
  else begin
    let arg_exprs = List.map (int_expr ~depth ctx sym) args in
    let saved_locals = sym.locals in
    let locals = List.map2 (fun (_, p) e -> p, e) f.A.fn_params arg_exprs in
    let restore k sym' = k { sym' with locals = saved_locals } in
    trans_stmts ~depth:(depth + 1) ctx { sym with locals } f.A.fn_body
      {
        next = restore ks.next;
        exit = restore ks.next;  (* return ends the call, not the handler *)
        brk = None;
        cont = None;
      }
  end

and assign_effect ~depth ctx sym op lhs rhs ks =
  let rhs_e = int_expr ~depth ctx sym rhs in
  let combine old =
    let e =
      match op with
      | A.A_eq -> rhs_e
      | A.A_add -> E.Bin (E.Add, old, rhs_e)
      | A.A_sub -> E.Bin (E.Sub, old, rhs_e)
      | A.A_mul -> E.Bin (E.Mul, old, rhs_e)
      | A.A_div -> E.Bin (E.Div, old, rhs_e)
      | A.A_mod -> E.Bin (E.Mod, old, rhs_e)
      | A.A_band | A.A_bor | A.A_bxor | A.A_shl | A.A_shr ->
        warn ctx "bitwise compound assignment abstracted to plain store";
        rhs_e
    in
    fold_expr ctx e
  in
  match lhs with
  | A.E_ident name when List.mem_assoc name sym.locals ->
    let old = List.assoc name sym.locals in
    ks.next { sym with locals = update_assoc name (combine old) sym.locals }
  | A.E_ident name when List.mem name ctx.tracked ->
    let old =
      Option.value ~default:(E.int 0) (List.assoc_opt name sym.globals)
    in
    let v = wrap_global ctx (combine old) in
    ks.next { sym with globals = update_assoc name v sym.globals }
  | A.E_ident name ->
    warn ctx "assignment to untracked variable %s ignored" name;
    ks.next sym
  | A.E_member (A.E_ident v, member) when List.mem_assoc v sym.msg_types ->
    (match member with
     | "id" | "dlc" ->
       (* frame metadata is fixed by the channel in the model *)
       ks.next sym
     | signal ->
       let m = List.assoc v sym.msg_types in
       if
         List.exists
           (fun s -> String.equal s.Candb.Dbc_ast.sig_name signal)
           m.Candb.Dbc_ast.signals
       then begin
         let fields =
           Option.value ~default:[] (List.assoc_opt v sym.msg_fields)
         in
         let old =
           Option.value ~default:(E.int 0) (List.assoc_opt signal fields)
         in
         let fields' = update_assoc signal (combine old) fields in
         ks.next { sym with msg_fields = update_assoc v fields' sym.msg_fields }
       end
       else begin
         warn ctx "message %s has no signal %s; assignment ignored"
           m.Candb.Dbc_ast.msg_name signal;
         ks.next sym
       end)
  | A.E_member (A.E_this, signal) ->
    (match sym.this_ctx with
     | Some (m, bindings) ->
       let old =
         Option.value ~default:(E.int 0) (List.assoc_opt signal bindings)
       in
       let bindings' = update_assoc signal (combine old) bindings in
       ks.next { sym with this_ctx = Some (m, bindings') }
     | None ->
       warn ctx "assignment to 'this' outside a handler ignored";
       ks.next sym)
  | A.E_method _ ->
    warn ctx "byte-level message write ignored by the model";
    ks.next sym
  | A.E_index _ ->
    warn ctx "array element write ignored by the model";
    ks.next sym
  | _ ->
    warn ctx "assignment to an unsupported lvalue ignored";
    ks.next sym

(* ------------------------------------------------------------------ *)
(* Program-level extraction                                            *)
(* ------------------------------------------------------------------ *)

let integral_globals prog =
  List.filter_map
    (fun v ->
      if is_integral v.A.var_ty && v.A.var_dims = [] then Some v.A.var_name
      else None)
    prog.A.variables

let timer_globals prog =
  List.filter_map
    (fun v ->
      match v.A.var_ty with
      | A.T_timer | A.T_ms_timer -> Some v.A.var_name
      | _ -> None)
    prog.A.variables

let global_msg_types ctx prog =
  List.filter_map
    (fun v ->
      match v.A.var_ty with
      | A.T_message (A.Msg_name n) ->
        (match Candb.Dbc_ast.find_message_by_name ctx.db n with
         | Some m -> Some (v.A.var_name, m)
         | None ->
           warn ctx "message variable %s has unknown type %s" v.A.var_name n;
           None)
      | A.T_message sel ->
        (match resolve_message ctx sel with
         | Some m -> Some (v.A.var_name, m)
         | None ->
           warn ctx "message variable %s has no database entry" v.A.var_name;
           None)
      | _ -> None)
    prog.A.variables

let extract_into ?(config = default_config) ~defs ~db ~node prog =
  let tracked =
    match config.track_globals with
    | Some names -> names
    | None -> integral_globals prog
  in
  let timer_names = timer_globals prog in
  let ctx =
    {
      config;
      defs;
      db;
      node;
      prog;
      tracked;
      timer_names;
      warnings = [];
      where = "program";
      used_chans = Hashtbl.create 8;
      tx_chans = Hashtbl.create 8;
    }
  in
  let msg_types = global_msg_types ctx prog in
  (* Initial values of tracked globals, folded progressively so that one
     initializer may reference an earlier global. *)
  let init_values =
    List.fold_left
      (fun acc name ->
        let decl =
          List.find_opt
            (fun v -> String.equal v.A.var_name name)
            prog.A.variables
        in
        let init_sym =
          {
            globals = List.map (fun (n, v) -> n, E.Lit v) acc;
            timer_flags = [];
            locals = [];
            msg_fields = [];
            msg_types;
            this_ctx = None;
          }
        in
        let value =
          match decl with
          | Some { A.var_init = Some e; _ } ->
            ctx.where <- "globals";
            (match
               try_const ctx (wrap_global ctx (int_expr ctx init_sym e))
             with
             | Some v -> v
             | None ->
               warn ctx "initializer of %s is not constant; using 0" name;
               Csp.Value.Int 0)
          | _ -> Csp.Value.Int 0
        in
        acc @ [ name, value ])
      [] tracked
  in
  let params = tracked @ List.map armed_param timer_names in
  let main_name = node in
  let entry_name = node ^ "_INIT" in
  let loop_sym =
    {
      globals = List.map (fun g -> g, E.Var g) tracked;
      timer_flags = List.map (fun t -> t, E.Var (armed_param t)) timer_names;
      locals = [];
      msg_fields = [];
      msg_types;
      this_ctx = None;
    }
  in
  let recurse sym =
    P.call
      ( main_name,
        List.map (fun g -> List.assoc g sym.globals) tracked
        @ List.map (fun t -> List.assoc t sym.timer_flags) timer_names )
  in
  let handler_ks = { next = recurse; brk = None; cont = None; exit = recurse } in
  (* Message branches. *)
  let message_branch (m : Candb.Dbc_ast.message) body =
    let chan = chan_name ctx m in
    use_chan ctx chan;
    let items =
      List.map (fun s -> P.In (input_var s, None)) m.Candb.Dbc_ast.signals
    in
    let bindings =
      List.map
        (fun s -> s.Candb.Dbc_ast.sig_name, E.Var (input_var s))
        m.Candb.Dbc_ast.signals
    in
    let sym = { loop_sym with this_ctx = Some (m, bindings) } in
    P.prefix_items (chan, items, trans_stmts ctx sym body handler_ks)
  in
  let branches = ref [] in
  List.iter
    (fun h ->
      ctx.where <- A.event_name h.A.event;
      match h.A.event with
      | A.Ev_message sel ->
        let targets =
          match sel with
          | A.Msg_any -> db.Candb.Dbc_ast.messages
          | _ ->
            (match resolve_message ctx sel with
             | Some m -> [ m ]
             | None ->
               warn ctx "handler for unknown message dropped";
               [])
        in
        List.iter
          (fun m -> branches := message_branch m h.A.body :: !branches)
          targets
      | A.Ev_timer t ->
        if List.mem t timer_names then begin
          if not config.timed then begin
            let chan = timer_chan ctx t in
            if Option.is_none (Csp.Defs.channel_type defs chan) then
              Csp.Defs.declare_channel defs chan [];
            use_chan ctx chan;
            let sym =
              { loop_sym with
                timer_flags =
                  update_assoc t (E.bool false) loop_sym.timer_flags }
            in
            branches :=
              P.guard
                ( E.Var (armed_param t),
                  P.prefix_items (chan, [], trans_stmts ctx sym h.A.body handler_ks)
                )
              :: !branches
          end
          (* timed mode: the handler fires from the tock branch below *)
        end
        else warn ctx "on timer for undeclared timer %s dropped" t
      | A.Ev_key c ->
        let chan = key_chan ctx c in
        if Option.is_none (Csp.Defs.channel_type defs chan) then
          Csp.Defs.declare_channel defs chan [];
        use_chan ctx chan;
        branches :=
          P.prefix_items (chan, [], trans_stmts ctx loop_sym h.A.body handler_ks)
          :: !branches
      | A.Ev_start | A.Ev_prestart | A.Ev_stop -> ())
    prog.A.handlers;
  (* Timed mode: one tock branch decrements every armed countdown; a
     timer whose countdown expires on this tock runs its handler body
     (multiple expiries chain in declaration order). *)
  if config.timed && timer_names <> [] then begin
    ctx.where <- "tock";
    if Option.is_none (Csp.Defs.channel_type defs "tock") then
      Csp.Defs.declare_channel defs "tock" [];
    use_chan ctx "tock";
    let handler_body t =
      List.find_map
        (fun h ->
          match h.A.event with
          | A.Ev_timer t' when String.equal t t' -> Some h.A.body
          | _ -> None)
        prog.A.handlers
      |> Option.value ~default:[]
    in
    (* after the decrement, chain expiry handlers over the timers *)
    let rec chain sym = function
      | [] -> recurse sym
      | t :: rest ->
        let cnt_before = List.assoc t loop_sym.timer_flags in
        P.ite
          ( E.Bin (E.Eq, cnt_before, E.int 1),
            trans_stmts ctx sym (handler_body t)
              { next = (fun s -> chain s rest);
                exit = (fun s -> chain s rest);
                brk = None;
                cont = None },
            chain sym rest )
    in
    let decremented =
      {
        loop_sym with
        timer_flags =
          List.map
            (fun (t, cnt) ->
              ( t,
                E.If
                  ( E.Bin (E.Gt, cnt, E.int 0),
                    E.Bin (E.Sub, cnt, E.int 1),
                    E.int 0 ) ))
            loop_sym.timer_flags;
      }
    in
    branches := P.prefix_items ("tock", [], chain decremented timer_names) :: !branches
  end;
  let main_body = P.ext_all (List.rev !branches) in
  Csp.Defs.define_proc defs main_name params main_body;
  (* Entry process: preStart then start bodies, then the main loop. *)
  let start_bodies =
    List.filter_map
      (fun h ->
        match h.A.event with
        | A.Ev_prestart -> Some (`Pre, h.A.body)
        | A.Ev_start -> Some (`Start, h.A.body)
        | _ -> None)
      prog.A.handlers
  in
  let ordered =
    List.filter_map (fun (k, b) -> if k = `Pre then Some b else None)
      start_bodies
    @ List.filter_map (fun (k, b) -> if k = `Start then Some b else None)
        start_bodies
  in
  let init_sym =
    {
      globals = List.map (fun (n, v) -> n, E.Lit v) init_values;
      timer_flags =
        List.map
          (fun t -> t, if config.timed then E.int 0 else E.bool false)
          timer_names;
      locals = [];
      msg_fields = [];
      msg_types;
      this_ctx = None;
    }
  in
  ctx.where <- "on start";
  let entry_body = trans_stmts ctx init_sym (List.concat ordered) handler_ks in
  Csp.Defs.define_proc defs entry_name [] entry_body;
  let alphabet =
    Csp.Eventset.chans (Hashtbl.fold (fun c () acc -> c :: acc) ctx.used_chans [])
  in
  {
    process_name = main_name;
    entry_name;
    alphabet;
    tracked;
    timers = timer_names;
    tx_channels =
      Hashtbl.fold (fun pair () acc -> pair :: acc) ctx.tx_chans []
      |> List.sort compare;
    warnings = List.rev ctx.warnings;
  }

let entry_call model = P.call (model.entry_name, [])
