type report = {
  accepted : bool;
  trace : Csp.Event.t list;
  rejected_at : int option;
}

(* The mapping itself lives in [Trace_rv] (shared with the streaming
   trace checker); here we just derive the mapper from the system. *)
let event_of_frame (system : Pipeline.system) frame =
  let mapper =
    Trace_rv.make ~domain:system.Pipeline.config.Extract.domain
      system.Pipeline.db
  in
  Trace_rv.event_of_frame mapper frame

let trace_accepted ?(unknown_ok = true) (system : Pipeline.system) frames =
  let defs = system.Pipeline.defs in
  let step = Csp.Semantics.make_cached defs in
  (* Only database-message channels are observable on the bus; timer and
     key events are node-internal, so replay treats them like tau. *)
  let config = system.Pipeline.config.Extract.domain in
  let observable =
    List.map
      (fun (m : Candb.Dbc_ast.message) ->
        config.Candb.To_cspm.channel_prefix ^ m.Candb.Dbc_ast.msg_name)
      system.Pipeline.db.Candb.Dbc_ast.messages
  in
  let silent label =
    match label with
    | Csp.Event.Tau -> true
    | Csp.Event.Tick -> false
    | Csp.Event.Vis e -> not (List.mem e.Csp.Event.chan observable)
  in
  let tau_close terms =
    let seen = Hashtbl.create 64 in
    let rec go acc = function
      | [] -> acc
      | t :: rest ->
        if Hashtbl.mem seen t then go acc rest
        else begin
          Hashtbl.replace seen t ();
          let taus =
            List.filter_map
              (fun (l, target) -> if silent l then Some target else None)
              (step t)
          in
          go (t :: acc) (taus @ rest)
        end
    in
    go [] terms
  in
  let fenv = Csp.Defs.fenv defs in
  let tys = Csp.Defs.ty_lookup defs in
  let initial =
    tau_close [ Csp.Proc.const_fold ~tys fenv system.Pipeline.composed ]
  in
  let mapper = Trace_rv.make ~domain:config system.Pipeline.db in
  let events =
    List.filter_map
      (fun f ->
        match Trace_rv.event_of_frame mapper f with
        | Some e -> Some (`Event e)
        | None -> if unknown_ok then None else Some `Unknown)
      frames
  in
  let rec walk states idx trace = function
    | [] -> { accepted = true; trace = List.rev trace; rejected_at = None }
    | `Unknown :: _ ->
      { accepted = false; trace = List.rev trace; rejected_at = Some idx }
    | `Event e :: rest ->
      let targets =
        List.concat_map
          (fun t ->
            List.filter_map
              (fun (l, target) ->
                match l with
                | Csp.Event.Vis e' when Csp.Event.equal e e' -> Some target
                | _ -> None)
              (step t))
          states
      in
      if targets = [] then
        { accepted = false; trace = List.rev (e :: trace); rejected_at = Some idx }
      else walk (tau_close targets) (idx + 1) (e :: trace) rest
  in
  walk initial 0 [] events

let run_and_check ?(until_ms = 10_000) system sim =
  Capl.Simulation.start sim;
  let _ = Capl.Simulation.run ~until_ms sim in
  let frames = List.map snd (Capl.Simulation.transmissions sim) in
  trace_accepted system frames

let pp_report ppf r =
  if r.accepted then
    Format.fprintf ppf "accepted (%d events)" (List.length r.trace)
  else
    Format.fprintf ppf "REJECTED at event %d of trace %a"
      (Option.value ~default:(-1) r.rejected_at)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Csp.Event.pp)
      r.trace
