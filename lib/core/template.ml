exception Template_error of string

let err fmt = Format.kasprintf (fun s -> raise (Template_error s)) fmt

type value =
  | Scalar of string
  | List of string list

type piece =
  | Text of string
  | Placeholder of string * string option  (* attribute, separator *)

type t = { pieces : piece list }

type group = (string * t) list

(* Parse "$name$" and "$name; separator=\", \"$" placeholders. *)
let parse_placeholder body =
  match String.index_opt body ';' with
  | None -> Placeholder (String.trim body, None)
  | Some i ->
    let name = String.trim (String.sub body 0 i) in
    let rest = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
    let prefix = "separator=" in
    if not (String.length rest > String.length prefix
            && String.sub rest 0 (String.length prefix) = prefix)
    then err "unknown placeholder option %S" rest;
    let quoted =
      String.sub rest (String.length prefix)
        (String.length rest - String.length prefix)
    in
    let sep =
      if String.length quoted >= 2 && quoted.[0] = '"'
         && quoted.[String.length quoted - 1] = '"'
      then String.sub quoted 1 (String.length quoted - 2)
      else err "separator must be a quoted string, got %S" quoted
    in
    Placeholder (name, Some sep)

let parse src =
  let n = String.length src in
  let pieces = ref [] in
  let buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      pieces := Text (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    if src.[!i] = '$' then begin
      if !i + 1 < n && src.[!i + 1] = '$' then begin
        Buffer.add_char buf '$';
        i := !i + 2
      end
      else begin
        match String.index_from_opt src (!i + 1) '$' with
        | None -> err "unterminated placeholder starting at offset %d" !i
        | Some close ->
          flush_text ();
          let body = String.sub src (!i + 1) (close - !i - 1) in
          pieces := parse_placeholder body :: !pieces;
          i := close + 1
      end
    end
    else begin
      Buffer.add_char buf src.[!i];
      incr i
    end
  done;
  flush_text ();
  { pieces = List.rev !pieces }

let render t attrs =
  let buf = Buffer.create 256 in
  List.iter
    (fun piece ->
      match piece with
      | Text s -> Buffer.add_string buf s
      | Placeholder (name, sep) ->
        (match List.assoc_opt name attrs, sep with
         | None, _ -> err "missing attribute %s" name
         | Some (Scalar s), None -> Buffer.add_string buf s
         | Some (Scalar _), Some _ ->
           err "attribute %s is scalar but used with a separator" name
         | Some (List items), Some sep ->
           Buffer.add_string buf (String.concat sep items)
         | Some (List _), None ->
           err "attribute %s is a list; use $%s; separator=\"...\"$" name name))
    t.pieces;
  Buffer.contents buf

let attributes t =
  List.filter_map
    (function
      | Text _ -> None
      | Placeholder (name, _) -> Some name)
    t.pieces
  |> List.sort_uniq String.compare

let group members =
  List.map
    (fun (name, src) ->
      match parse src with
      | t -> name, t
      | exception Template_error msg ->
        err "template %s: %s" name msg)
    members

let lookup g name =
  match List.assoc_opt name g with
  | Some t -> t
  | None -> err "no template named %s" name

let render_in g name attrs = render (lookup g name) attrs
