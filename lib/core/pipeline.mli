(** The end-to-end workflow of the paper's Fig. 1: CAPL sources (plus a CAN
    database) → lex → parse → model extraction → CSPm emission → reload →
    refinement checking.

    A {!system} bundles the shared definition environment (channels and
    signal types from the database, process definitions from extraction),
    the per-node models and the composed system process
    [N1 [A1 || A2∪...] N2 ...] — the SYSTEM = VMG ∥ ECU of Section V-B. *)

type system = {
  defs : Csp.Defs.t;
  db : Candb.Dbc_ast.t;
  config : Extract.config;
  programs : (string * Capl.Ast.program) list;
  nodes : (string * Extract.node_model) list;
  composed : Csp.Proc.t;
}

exception Pipeline_error of string

val compose : (Csp.Proc.t * Csp.Eventset.t) list -> Csp.Proc.t
(** Alphabetized parallel composition of processes: nodes synchronize
    exactly on the channels their alphabets share (CAN broadcast
    semantics). Empty list composes to [SKIP]. *)

val build :
  ?config:Extract.config ->
  db:Candb.Dbc_ast.t ->
  (string * Capl.Ast.program) list ->
  system
(** Declare the database's channels, then extract every node.
    @raise Extract.Unsupported (non-lenient config) or
    {!Csp.Defs.Duplicate}. *)

val parse_sources :
  dbc:string ->
  (string * string) list ->
  Candb.Dbc_ast.t * (string * Capl.Ast.program) list
(** Parse the DBC text and the CAPL sources without extracting anything.
    @raise Pipeline_error wrapping parse errors with the offending input's
    name. *)

val build_from_sources :
  ?config:Extract.config ->
  dbc:string ->
  (string * string) list ->
  system
(** {!parse_sources} then {!build}.
    @raise Pipeline_error wrapping parse errors with the offending input's
    name. *)

val lint_programs :
  ?obs:Obs.t ->
  db:Candb.Dbc_ast.t ->
  (string * Capl.Ast.program) list ->
  Analysis.Diag.t list
(** {!Analysis.Capl_lint.lint_nodes} over parsed programs, checked
    against the database — usable before extraction, which in strict
    mode may reject the very defects the lint reports. *)

val warnings : system -> (string * Extract.warning) list
(** All extraction warnings, tagged with their node. *)

val lint : ?obs:Obs.t -> system -> Analysis.Diag.t list
(** {!Analysis.Capl_lint.lint_nodes} over the system's node programs,
    checked against its CAN database. Pure — never affects extraction
    output or refinement verdicts. *)

val emit_script : ?assertions:Cspm.Ast.assertion list -> system -> string
(** Render the whole system as a CSPm script (the artifact of the paper's
    Fig. 3), headed by a provenance comment. *)

val reload : ?assertions:Cspm.Ast.assertion list -> system -> Cspm.Elaborate.t
(** Emit and re-parse the script — the FDR hand-off step; the result is
    checkable with {!Cspm.Check}. *)

val check_refinement :
  ?config:Csp.Check_config.t ->
  ?model:Csp.Refine.model ->
  system ->
  spec:Csp.Proc.t ->
  Csp.Refine.result
(** Check [spec ⊑ SYSTEM] directly on the in-memory model. Budgets,
    workers, and observability come from [config]. *)
