(** The model extractor: CAPL programs → CSP implementation models.

    This is the paper's central contribution (Section III / Fig. 1): each
    CAPL node becomes a recursive CSP process over channels derived from
    the CAN database ({!Candb.To_cspm}), with:

    - [on message M] event procedures as external-choice branches
      [M?sig1?sig2 -> ...] whose bodies are translated statement by
      statement;
    - [output(m)] statements as output prefixes carrying the message
      variable's symbolically-tracked signal values;
    - tracked global variables as process parameters (finite data
      abstraction: values live in [0..global_max] and arithmetic wraps);
    - timers as boolean "armed" parameters: [setTimer] arms them,
      [on timer] branches are guarded by the flag and fire on a dedicated
      [timer_<node>_<name>] channel — the paper's untimed treatment of
      time-triggered behaviour;
    - [on key] procedures as branches on per-key channels;
    - [on start] (and [preStart]) bodies folded into an entry process
      [<NODE>_INIT] that runs once before the main loop.

    Constructs outside the translatable fragment (unbounded loops,
    byte-level access, float state, recursion) are reported as warnings
    and over- or under-approximated as documented on each warning; with
    [lenient = false] they raise {!Unsupported} instead. *)

type config = {
  domain : Candb.To_cspm.config;  (** signal-domain clamping *)
  global_max : int;
      (** tracked globals live in [0..global_max]; arithmetic wraps
          (default 7) *)
  track_globals : string list option;
      (** [None] (default) tracks every integral global *)
  max_unroll : int;  (** static loop-unroll bound (default 16) *)
  lenient : bool;  (** warn-and-approximate instead of raising (default) *)
  bus_medium : bool;
      (** when true, [output] statements transmit on per-node
          [tx_<node>_<msg>] channels that a BUS relay process (see
          [Pipeline]) forwards to the broadcast [<msg>] channels; this is
          the composition that admits {e multiple senders} per CAN
          identifier (e.g. an attacker node injecting frames), which pure
          multiway synchronization cannot express. Default false: direct
          rendezvous, appropriate when every message has one sender *)
  timed : bool;
      (** tock-timed translation — the paper's Section VII-B "more
          practical approach" to time. When true, a [tock] event marks the
          passage of [tock_ms] milliseconds: [setTimer] arms an integer
          countdown parameter, every [tock] decrements the armed
          countdowns, and a timer's handler body runs at the tock on which
          its countdown expires. When false (default), timers are untimed
          armed-flags firing on nondeterministic [timer_*] events *)
  tock_ms : int;  (** milliseconds of one [tock] (default 10) *)
  max_ticks : int;
      (** countdown parameters range over [0..max_ticks] (default 8);
          longer durations clamp with a warning *)
}

val default_config : config

type warning = {
  where : string;  (** handler/function containing the construct *)
  what : string;
}

val pp_warning : Format.formatter -> warning -> unit

exception Unsupported of warning

type node_model = {
  process_name : string;  (** the main-loop process, e.g. [ECU] *)
  entry_name : string;  (** the entry process including [on start] *)
  alphabet : Csp.Eventset.t;  (** channels this node communicates on *)
  tracked : string list;  (** tracked globals, in parameter order *)
  timers : string list;  (** timer names, in parameter order *)
  tx_channels : (string * string) list;
      (** bus-medium mode: (tx channel, broadcast channel) pairs this node
          transmits on *)
  warnings : warning list;
}

val extract_into :
  ?config:config ->
  defs:Csp.Defs.t ->
  db:Candb.Dbc_ast.t ->
  node:string ->
  Capl.Ast.program ->
  node_model
(** Translate one node's program, adding its process definitions (and its
    timer/key channels) to [defs]. Message channels and signal types must
    already be declared (see {!Candb.To_cspm.declare}) — several nodes
    share them.
    @raise Unsupported when [config.lenient] is false and the program
    leaves the translatable fragment.
    @raise Csp.Defs.Duplicate if the node name collides. *)

val entry_call : node_model -> Csp.Proc.t
(** The entry process call with initial arguments. *)
