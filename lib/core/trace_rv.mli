(** Offline runtime verification glue: map recorded CAN traffic to
    specification events, using the same channel naming and signal
    clamping as the model extractor.

    This is the alphabet half of the trace-containment pipeline: a
    [Trace_rv.t] is a precompiled frame-id table built from a CAN
    database and the extractor's domain configuration, so mapping a
    logged entry is one hashtable probe plus signal decoding — no
    [Pipeline.system] required. [Conformance.event_of_frame] is the
    same mapping, derived from a full system. *)

type t

val make : ?domain:Candb.To_cspm.config -> Candb.Dbc_ast.t -> t
(** [domain] defaults to [Candb.To_cspm.default_config] — the channel
    names and clamped signal ranges the extractor produces with no
    overrides. *)

val channels : t -> string list
(** Sorted channel names the mapper can produce — the observable
    alphabet to hand to [Csp.Tracecheck.compile]. *)

val event_of_frame : t -> Canbus.Frame.t -> Csp.Event.t option
(** Channel from the database message name (prefixed per [domain]),
    arguments from decoded signal values clamped exactly as the
    extractor clamps signal domains. [None] for ids not in the
    database. *)

val label_of_entry : t -> Canbus.Trace_log.entry -> Csp.Event.label option
(** The observation a log entry contributes to its stream's trace:
    [Tx] frames map through {!event_of_frame}; [Rx] entries (delivery
    duplicates of a [Tx]) and [Fault] entries (interference metadata)
    are [None]. *)
