(** A small StringTemplate-style engine.

    The paper's translator uses ANTLR's StringTemplate to keep application
    logic separate from output formatting; this module reproduces the part
    the pipeline needs: named templates with [$attr$] placeholders,
    list-valued attributes rendered with separators
    ([$items; separator=", "$]), and [$$] as the escape for a literal
    dollar sign. Templates are grouped so the emitter can swap a whole
    output dialect by swapping the group. *)

type t
(** A compiled template. *)

type group

exception Template_error of string

(** Attribute values: scalar strings or lists. *)
type value =
  | Scalar of string
  | List of string list

val parse : string -> t
(** @raise Template_error on an unterminated [$...$] placeholder. *)

val render : t -> (string * value) list -> string
(** @raise Template_error on a missing attribute, or a list attribute used
    without a separator (and vice versa). *)

val attributes : t -> string list
(** Placeholder names, sorted and deduplicated. *)

val group : (string * string) list -> group
(** Compile a named collection of templates.
    @raise Template_error on a malformed member (the name is included). *)

val lookup : group -> string -> t
(** @raise Template_error if the group has no such template. *)

val render_in : group -> string -> (string * value) list -> string
