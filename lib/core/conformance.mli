(** Translation-soundness checking: concrete CAPL executions against the
    extracted CSP model.

    The substitution argument of DESIGN.md: because we built the execution
    substrate (CAN simulator + CAPL interpreter), we can check empirically
    that every frame sequence the real (simulated) network produces is a
    trace of the extracted model — i.e. the model extractor
    over-approximates the implementation, which is what makes refinement
    verdicts about the model meaningful for the implementation. *)

type report = {
  accepted : bool;
  trace : Csp.Event.t list;  (** the observed bus trace, as model events *)
  rejected_at : int option;  (** index of the first unacceptable event *)
}

val event_of_frame :
  Pipeline.system -> Canbus.Frame.t -> Csp.Event.t option
(** Map a bus frame to the model event: channel from the database message
    name, arguments from decoded raw signal values, clamped exactly as the
    extractor clamps signal domains. [None] if the frame's id is not in
    the database. *)

val trace_accepted :
  ?unknown_ok:bool ->
  Pipeline.system ->
  Canbus.Frame.t list ->
  report
(** Replay the frames against the composed model by stepping through
    tau-closures. Frames with unknown ids are skipped when [unknown_ok]
    (default true), rejected otherwise. *)

val run_and_check :
  ?until_ms:int ->
  Pipeline.system ->
  Capl.Simulation.t ->
  report
(** Start and run the simulation, then check its transmission log against
    the system model. *)

val pp_report : Format.formatter -> report -> unit
